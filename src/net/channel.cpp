#include "net/channel.h"

#include <cerrno>
#include <cstring>
#include <utility>

#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/types.h>
#include <unistd.h>

namespace skewless {

bool make_socket_pair(int fds[2], std::string& error) {
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    error = std::string("socketpair: ") + std::strerror(errno);
    return false;
  }
  return true;
}

FrameChannel& FrameChannel::operator=(FrameChannel&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    bytes_sent_ = other.bytes_sent_;
    bytes_received_ = other.bytes_received_;
    last_error_ = std::move(other.last_error_);
    eof_ = other.eof_;
    timed_out_ = other.timed_out_;
  }
  return *this;
}

void FrameChannel::set_io_timeout_ms(int timeout_ms) {
  if (fd_ < 0) return;
  struct timeval tv = {};
  if (timeout_ms > 0) {
    tv.tv_sec = timeout_ms / 1000;
    tv.tv_usec = static_cast<suseconds_t>(timeout_ms % 1000) * 1000;
  }
  (void)::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  (void)::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

void FrameChannel::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool FrameChannel::send(FrameType type, std::uint64_t epoch,
                        const std::uint8_t* payload, std::size_t size) {
  eof_ = false;
  timed_out_ = false;
  if (fd_ < 0) {
    last_error_ = "send on closed channel";
    return false;
  }
  std::uint8_t header[kFrameHeaderBytes];
  {
    ByteWriter w;
    encode_frame_header(w, type, epoch, static_cast<std::uint32_t>(size));
    std::memcpy(header, w.bytes().data(), kFrameHeaderBytes);
  }
  // One sendmsg for header + payload when possible; partial writes fall
  // back to byte-offset resumption across both pieces. MSG_NOSIGNAL: a
  // dead peer surfaces as EPIPE here, never as a process-killing SIGPIPE.
  struct Piece {
    const std::uint8_t* data;
    std::size_t size;
  };
  const Piece pieces[2] = {{header, kFrameHeaderBytes}, {payload, size}};
  std::size_t piece = 0;
  std::size_t offset = 0;
  while (piece < 2) {
    if (pieces[piece].size == offset) {
      ++piece;
      offset = 0;
      continue;
    }
    struct iovec iov[2];
    int iovcnt = 0;
    for (std::size_t p = piece; p < 2; ++p) {
      const std::size_t skip = p == piece ? offset : 0;
      if (pieces[p].size == skip) continue;
      iov[iovcnt].iov_base =
          const_cast<std::uint8_t*>(pieces[p].data + skip);
      iov[iovcnt].iov_len = pieces[p].size - skip;
      ++iovcnt;
    }
    if (iovcnt == 0) break;
    struct msghdr msg = {};
    msg.msg_iov = iov;
    msg.msg_iovlen = static_cast<std::size_t>(iovcnt);
    const ssize_t n = ::sendmsg(fd_, &msg, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // SO_SNDTIMEO expired: the peer is alive enough to hold the
        // socket open but is not draining — a wedge, not a crash.
        timed_out_ = true;
        last_error_ = "sendmsg: timed out (peer not draining)";
        return false;
      }
      last_error_ = std::string("sendmsg: ") + std::strerror(errno);
      return false;
    }
    bytes_sent_ += static_cast<std::uint64_t>(n);
    std::size_t advanced = static_cast<std::size_t>(n);
    while (advanced > 0 && piece < 2) {
      const std::size_t left = pieces[piece].size - offset;
      if (advanced < left) {
        offset += advanced;
        advanced = 0;
      } else {
        advanced -= left;
        ++piece;
        offset = 0;
      }
    }
  }
  return true;
}

bool FrameChannel::read_exact(std::uint8_t* dst, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::recv(fd_, dst + got, n - got, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // SO_RCVTIMEO expired mid-frame: the peer stalled after a
        // partial write — classified as a wedge by the recovery layer.
        timed_out_ = true;
        last_error_ = "recv: timed out mid-frame";
        return false;
      }
      last_error_ = std::string("recv: ") + std::strerror(errno);
      return false;
    }
    if (r == 0) {
      eof_ = true;
      last_error_ = "peer closed the connection";
      return false;
    }
    got += static_cast<std::size_t>(r);
    bytes_received_ += static_cast<std::uint64_t>(r);
  }
  return true;
}

bool FrameChannel::recv(FrameHeader& header,
                        std::vector<std::uint8_t>& payload) {
  eof_ = false;
  timed_out_ = false;
  if (fd_ < 0) {
    last_error_ = "recv on closed channel";
    return false;
  }
  std::uint8_t raw[kFrameHeaderBytes];
  if (!read_exact(raw, kFrameHeaderBytes)) return false;
  if (!decode_frame_header(raw, kFrameHeaderBytes, header, last_error_)) {
    return false;
  }
  payload.resize(header.payload_size);
  if (header.payload_size > 0 &&
      !read_exact(payload.data(), header.payload_size)) {
    return false;
  }
  return true;
}

int FrameChannel::wait_readable(int timeout_ms) {
  struct pollfd pfd = {};
  pfd.fd = fd_;
  pfd.events = POLLIN;
  while (true) {
    const int r = ::poll(&pfd, 1, timeout_ms);
    if (r < 0) {
      if (errno == EINTR) continue;
      last_error_ = std::string("poll: ") + std::strerror(errno);
      return -1;
    }
    if (r == 0) return 0;
    // Readable data (or an EOF, which recv() reports cleanly) counts;
    // a bare error/hangup with nothing buffered is -1.
    if ((pfd.revents & (POLLIN | POLLHUP)) != 0) return 1;
    last_error_ = "poll: socket error";
    return -1;
  }
}

}  // namespace skewless
