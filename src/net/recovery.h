// Driver-side recovery state for the socket engine: the bounded
// per-worker checkpoint ring, the bounded replay buffer of the open
// epoch's routed batches, and worker exit-status classification. These
// are plain data structures (unit-tested directly); the recovery
// PROTOCOL — detect, respawn, restore, replay — lives in NetEngine.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "net/wire.h"

namespace skewless {

// Worker process exit codes (worker_main). The driver logs which one it
// reaped, so a protocol violation, a corrupt frame and a clean stop are
// distinguishable post-mortem instead of all reading as "worker died".
inline constexpr int kWorkerExitOk = 0;
inline constexpr int kWorkerExitChannel = 1;
inline constexpr int kWorkerExitHandshake = 2;
inline constexpr int kWorkerExitProtocol = 3;
inline constexpr int kWorkerExitCorruptFrame = 4;
inline constexpr int kWorkerExitFault = 5;  // injected fault (tests)

/// Human-readable classification of a waitpid status: which exit code
/// (named) or which signal ended the worker.
[[nodiscard]] std::string describe_worker_exit(int wait_status);

/// Bounded ring of per-epoch checkpoints for one worker, newest last.
/// Recovery only ever reinstalls latest(); the ring depth exists so a
/// checkpoint that arrives corrupt can fall back one epoch without the
/// driver holding O(epochs) state history.
class CheckpointRing {
 public:
  explicit CheckpointRing(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  void push(CheckpointPayload cp) {
    ring_.push_back(std::move(cp));
    while (ring_.size() > capacity_) ring_.pop_front();
  }

  [[nodiscard]] const CheckpointPayload* latest() const {
    return ring_.empty() ? nullptr : &ring_.back();
  }

  void clear() { ring_.clear(); }

  [[nodiscard]] std::size_t size() const { return ring_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  /// Approximate resident bytes of the buffered state blobs (the bound
  /// the ring test asserts never grows with run length).
  [[nodiscard]] std::size_t memory_bytes() const {
    std::size_t total = 0;
    for (const CheckpointPayload& cp : ring_) {
      for (const WireKeyState& s : cp.states) {
        total += sizeof(WireKeyState) + s.blob.size();
      }
    }
    return total;
  }

 private:
  std::deque<CheckpointPayload> ring_;
  std::size_t capacity_;
};

/// Bounded record of the open epoch's routed batches for one worker —
/// the verbatim serialized kBatch payloads, so a replay re-sends the
/// exact bytes (same tuples, same emit timestamps, same order) and the
/// respawned worker's fold is bit-identical to the lost one's. Cleared
/// when the epoch's checkpoint lands (the batches are then reflected in
/// durable state). Overflow is sticky: past the byte budget the buffer
/// stops recording, and a crash before the next checkpoint becomes
/// unrecoverable (the engine fails instead of replaying a hole).
class ReplayBuffer {
 public:
  struct RecordedBatch {
    std::uint64_t epoch = 0;
    std::vector<std::uint8_t> payload;
  };

  explicit ReplayBuffer(std::size_t max_bytes) : max_bytes_(max_bytes) {}

  /// Returns false (and records nothing) once the budget is exceeded.
  bool record(std::uint64_t epoch, const std::uint8_t* payload,
              std::size_t size) {
    if (overflowed_ || bytes_ + size > max_bytes_) {
      overflowed_ = true;
      return false;
    }
    RecordedBatch batch;
    batch.epoch = epoch;
    batch.payload.assign(payload, payload + size);
    bytes_ += size;
    batches_.push_back(std::move(batch));
    return true;
  }

  void clear() {
    batches_.clear();
    bytes_ = 0;
    overflowed_ = false;
  }

  [[nodiscard]] const std::vector<RecordedBatch>& batches() const {
    return batches_;
  }
  [[nodiscard]] std::size_t bytes() const { return bytes_; }
  [[nodiscard]] bool overflowed() const { return overflowed_; }

 private:
  std::vector<RecordedBatch> batches_;
  std::size_t max_bytes_;
  std::size_t bytes_ = 0;
  bool overflowed_ = false;
};

}  // namespace skewless
