// Deterministic fault injection for the socket engine.
//
// A FaultPlan is a list of (kind, worker, epoch) events, parsed from a
// spec string (`skewless_sim --fault`) or built programmatically in
// tests / from a seed. The plan crosses the fork inside NetWorkerOptions,
// so worker-side faults (wedge, garble, drop) fire at an exact protocol
// point — the kSeal receipt for the matching epoch — and driver-side
// kills fire at the matching interval boundary. Every failure mode the
// recovery layer claims to survive is therefore reproducible on demand.
//
// Re-arming: a one-shot event fires only in a worker's FIRST incarnation
// (incarnation 0), so the respawned worker replays the epoch cleanly; a
// `sticky` event fires in EVERY incarnation, which is how the
// retry-budget-exhaustion / degraded-mode paths are driven.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace skewless {

enum class FaultKind : std::uint8_t {
  /// Driver-side: SIGKILL the worker process at the start of the
  /// epoch's interval boundary (before the seal goes out). Always
  /// one-shot — the respawned worker is never re-killed.
  kKill = 0,
  /// Worker-side: pause forever on the epoch's kSeal — alive but
  /// silent, the case only the receive deadline can detect.
  kWedge,
  /// Worker-side: write garbage bytes onto the control channel where
  /// the epoch's boundary summary belongs (corrupt-frame detection).
  kGarble,
  /// Worker-side: close both channels and exit mid-epoch (clean-EOF
  /// detection, distinct worker exit code).
  kDrop,
};

[[nodiscard]] const char* fault_kind_name(FaultKind kind);

struct FaultEvent {
  FaultKind kind = FaultKind::kKill;
  std::uint32_t worker = 0;
  std::uint64_t epoch = 1;  // epochs are 1-based (interval i seals epoch i+1)
  bool sticky = false;
};

struct FaultPlan {
  std::vector<FaultEvent> events;

  [[nodiscard]] bool empty() const { return events.empty(); }

  /// First event armed for (worker, epoch) in this incarnation, or
  /// nullptr. One-shot events arm only for incarnation 0.
  [[nodiscard]] const FaultEvent* match(std::uint32_t worker,
                                        std::uint64_t epoch,
                                        std::uint32_t incarnation) const;
};

/// Parses `"kind:w=W,epoch=E[,sticky][;...]"` where kind is one of
/// kill|wedge|garble|drop. Returns false with a human-readable reason in
/// `error` on any malformed field. Example:
///   "kill:w=1,epoch=3;wedge:w=0,epoch=5,sticky"
[[nodiscard]] bool parse_fault_plan(const std::string& spec, FaultPlan& plan,
                                    std::string& error);

/// Seeded random plan: `count` events drawn over `workers` x `epochs`
/// (all one-shot, kinds cycled deterministically) — the fuzz-flavored
/// byte-identity suites use this to cover the fault space without
/// hand-picking coordinates.
[[nodiscard]] FaultPlan randomized_fault_plan(std::uint64_t seed,
                                              std::uint32_t workers,
                                              std::uint64_t epochs,
                                              std::size_t count);

}  // namespace skewless
