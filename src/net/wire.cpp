#include "net/wire.h"

namespace skewless {

namespace {

/// Field-wise tuple size on the wire (the struct itself has padding).
constexpr std::size_t kTupleWireBytes = 8 + 8 + 8 + 4;

}  // namespace

void encode_tuple_batch(ByteWriter& out, const std::vector<Tuple>& tuples) {
  out.u32(static_cast<std::uint32_t>(tuples.size()));
  for (const Tuple& t : tuples) {
    out.u64(t.key);
    out.i64(t.value);
    out.i64(t.emit_micros);
    out.u32(t.stream);
  }
}

bool decode_tuple_batch(ByteReader& in, std::vector<Tuple>& tuples) {
  const std::uint32_t n = in.u32();
  if (!in.fits(n, kTupleWireBytes)) return false;
  tuples.clear();
  tuples.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    Tuple t;
    t.key = in.u64();
    t.value = in.i64();
    t.emit_micros = in.i64();
    t.stream = in.u32();
    tuples.push_back(t);
  }
  return in.ok();
}

void encode_hello(ByteWriter& out, const HelloPayload& hello) {
  out.u32(hello.worker_id);
  out.u32(hello.num_workers);
}

bool decode_hello(ByteReader& in, HelloPayload& hello) {
  hello.worker_id = in.u32();
  hello.num_workers = in.u32();
  return in.ok();
}

void encode_seal(ByteWriter& out, const SealPayload& seal) {
  out.u64(seal.batches);
}

bool decode_seal(ByteReader& in, SealPayload& seal) {
  seal.batches = in.u64();
  return in.ok();
}

void encode_key_list(ByteWriter& out, const std::vector<KeyId>& keys) {
  out.u32(static_cast<std::uint32_t>(keys.size()));
  for (const KeyId key : keys) out.u64(key);
}

bool decode_key_list(ByteReader& in, std::vector<KeyId>& keys) {
  const std::uint32_t n = in.u32();
  if (!in.fits(n, sizeof(KeyId))) return false;
  keys.clear();
  keys.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) keys.push_back(in.u64());
  return in.ok();
}

void encode_key_states(ByteWriter& out,
                       const std::vector<WireKeyState>& states) {
  out.u32(static_cast<std::uint32_t>(states.size()));
  for (const WireKeyState& s : states) {
    out.u64(s.key);
    out.u32(static_cast<std::uint32_t>(s.blob.size()));
    out.append(s.blob.data(), s.blob.size());
  }
}

bool decode_key_states(ByteReader& in, std::vector<WireKeyState>& states) {
  const std::uint32_t n = in.u32();
  constexpr std::size_t kMinEntryBytes = 8 + 4;
  if (!in.fits(n, kMinEntryBytes)) return false;
  states.clear();
  states.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    WireKeyState s;
    s.key = in.u64();
    const std::uint32_t blob_size = in.u32();
    if (!in.fits(blob_size, 1)) return false;
    s.blob.resize(blob_size);
    if (blob_size > 0 && !in.read_into(s.blob.data(), blob_size)) {
      return false;
    }
    states.push_back(std::move(s));
  }
  return in.ok();
}

void encode_expire(ByteWriter& out, Micros watermark) { out.i64(watermark); }

bool decode_expire(ByteReader& in, Micros& watermark) {
  watermark = in.i64();
  return in.ok();
}

void encode_plan(ByteWriter& out, const PlanPayload& plan) {
  out.u64(plan.seq);
  out.u32(static_cast<std::uint32_t>(plan.moves.size()));
  for (const KeyMove& mv : plan.moves) {
    out.u64(mv.key);
    out.u32(static_cast<std::uint32_t>(mv.from));
    out.u32(static_cast<std::uint32_t>(mv.to));
    out.f64(mv.state_bytes);
  }
}

bool decode_plan(ByteReader& in, PlanPayload& plan) {
  plan.seq = in.u64();
  const std::uint32_t n = in.u32();
  constexpr std::size_t kMoveWireBytes = 8 + 4 + 4 + 8;
  if (!in.fits(n, kMoveWireBytes)) return false;
  plan.moves.clear();
  plan.moves.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    KeyMove mv;
    mv.key = in.u64();
    mv.from = static_cast<InstanceId>(in.u32());
    mv.to = static_cast<InstanceId>(in.u32());
    mv.state_bytes = in.f64();
    plan.moves.push_back(mv);
  }
  return in.ok();
}

void encode_ack(ByteWriter& out, const AckPayload& ack) { out.u64(ack.seq); }

bool decode_ack(ByteReader& in, AckPayload& ack) {
  ack.seq = in.u64();
  return in.ok();
}

void encode_checkpoint(ByteWriter& out, const CheckpointPayload& cp) {
  out.u64(cp.epoch);
  out.u64(cp.processed);
  out.u64(cp.outputs);
  out.u64(cp.local_buckets);
  out.u64(cp.state_checksum);
  encode_key_states(out, cp.states);
}

bool decode_checkpoint(ByteReader& in, CheckpointPayload& cp) {
  cp.epoch = in.u64();
  cp.processed = in.u64();
  cp.outputs = in.u64();
  cp.local_buckets = in.u64();
  cp.state_checksum = in.u64();
  if (!in.ok()) return false;
  return decode_key_states(in, cp.states);
}

void encode_heartbeat(ByteWriter& out, const HeartbeatPayload& hb) {
  out.u64(hb.epoch_batches);
}

bool decode_heartbeat(ByteReader& in, HeartbeatPayload& hb) {
  hb.epoch_batches = in.u64();
  return in.ok();
}

void encode_fin(ByteWriter& out, const FinPayload& fin) {
  out.u64(fin.state_checksum);
  out.u64(fin.state_entries);
  out.u64(fin.processed);
  out.u64(fin.outputs);
}

bool decode_fin(ByteReader& in, FinPayload& fin) {
  fin.state_checksum = in.u64();
  fin.state_entries = in.u64();
  fin.processed = in.u64();
  fin.outputs = in.u64();
  return in.ok();
}

}  // namespace skewless
