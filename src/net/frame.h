// Wire framing for the socket-backed distributed engine.
//
// Every message on a net channel — data or control — is one frame:
//
//   ┌─────────┬─────────┬──────┬─────┬─────────┬──────────────┬─────────┐
//   │ magic   │ version │ type │ pad │ epoch   │ payload_size │ payload │
//   │ u32     │ u8      │ u8   │ u16 │ u64     │ u32          │ bytes   │
//   └─────────┴─────────┴──────┴─────┴─────────┴──────────────┴─────────┘
//
// The magic + version prefix is the versioning story for the whole wire
// stack (see common/serde.h): a peer built against a different protocol
// revision fails the handshake on its FIRST frame with a clear error,
// before any payload field is decoded, so the payload encodings stay
// version-free. The header is decoded with a CHECKED ByteReader — a
// corrupt or truncated header rejects the frame (connection dropped),
// never aborts the process.
#pragma once

#include <cstdint>
#include <string>

#include "common/serde.h"

namespace skewless {

/// "SKWL" little-endian. First bytes of every frame.
inline constexpr std::uint32_t kFrameMagic = 0x4c574b53u;

/// Bumped on ANY wire-visible change (header layout, frame types,
/// payload encodings). Mismatched peers refuse each other at the
/// handshake. v2: fault-tolerance frames (Checkpoint/Restore/RestoreAck/
/// Heartbeat).
inline constexpr std::uint8_t kWireVersion = 2;

/// Hard cap on a single frame's payload. Loopback batches and boundary
/// summaries are a few MiB at most; anything bigger is a corrupt length
/// field, and rejecting it here stops a bad frame from driving a giant
/// allocation.
inline constexpr std::uint32_t kMaxFramePayload = 256u << 20;

enum class FrameType : std::uint8_t {
  kHello = 1,    // ctrl, both ways: version handshake (payload: worker id)
  kBatch = 2,    // data, driver->worker: routed tuple batch
  kSeal = 3,     // ctrl, driver->worker: close the epoch (payload: batches)
  kSummary = 4,  // ctrl, worker->driver: serialized boundary slab
  kHeavySet = 5, // ctrl, driver->worker: post-roll heavy-key broadcast
  kExtract = 6,  // ctrl, driver->worker: extract keys for migration
  kMigrated = 7, // ctrl, worker->driver: extracted serialized states
  kInstall = 8,  // ctrl, driver->worker: install migrated states
  kInstallAck = 9,  // ctrl, worker->driver: installs applied
  kExpire = 10,  // ctrl, driver->worker: window-expiry watermark
  kPlan = 11,    // ctrl, driver->worker: sparse rebalance-plan broadcast
  kPlanAck = 12, // ctrl, worker->driver: plan received (latency probe)
  kStop = 13,    // ctrl, driver->worker: shut down after Fin
  kFin = 14,     // ctrl, worker->driver: final checksums + counters
  kCheckpoint = 15,  // ctrl, worker->driver: post-seal state checkpoint
  kRestore = 16,     // ctrl, driver->worker: reinstall a checkpoint
  kRestoreAck = 17,  // ctrl, worker->driver: checkpoint reinstalled
  kHeartbeat = 18,   // ctrl, worker->driver: epoch-progress liveness beat
};

/// Smallest and largest valid FrameType values (decode range check).
inline constexpr std::uint8_t kMinFrameType =
    static_cast<std::uint8_t>(FrameType::kHello);
inline constexpr std::uint8_t kMaxFrameType =
    static_cast<std::uint8_t>(FrameType::kHeartbeat);

[[nodiscard]] const char* frame_type_name(FrameType type);

struct FrameHeader {
  FrameType type = FrameType::kHello;
  std::uint64_t epoch = 0;
  std::uint32_t payload_size = 0;
};

/// Serialized header size on the wire.
inline constexpr std::size_t kFrameHeaderBytes = 4 + 1 + 1 + 2 + 8 + 4;

/// Appends the 20-byte header for a frame of `payload_size` bytes.
void encode_frame_header(ByteWriter& out, FrameType type, std::uint64_t epoch,
                         std::uint32_t payload_size);

/// Decodes + validates a header from exactly kFrameHeaderBytes bytes.
/// Returns false — with a human-readable reason in `error` — on a magic
/// mismatch, a version mismatch, an unknown frame type, or an impossible
/// payload size. Never aborts: the input came off a socket.
[[nodiscard]] bool decode_frame_header(const std::uint8_t* bytes,
                                       std::size_t size, FrameHeader& header,
                                       std::string& error);

}  // namespace skewless
