#include "net/recovery.h"

#include <cstring>

#include <sys/wait.h>

namespace skewless {

std::string describe_worker_exit(int wait_status) {
  if (WIFEXITED(wait_status)) {
    const int code = WEXITSTATUS(wait_status);
    const char* what = "unknown exit code";
    switch (code) {
      case kWorkerExitOk: what = "clean Fin"; break;
      case kWorkerExitChannel: what = "channel I/O failure"; break;
      case kWorkerExitHandshake: what = "handshake failure"; break;
      case kWorkerExitProtocol: what = "protocol error"; break;
      case kWorkerExitCorruptFrame: what = "corrupt frame"; break;
      case kWorkerExitFault: what = "injected fault"; break;
      default: break;
    }
    return "exited " + std::to_string(code) + " (" + what + ")";
  }
  if (WIFSIGNALED(wait_status)) {
    const int sig = WTERMSIG(wait_status);
    const char* name = ::strsignal(sig);
    return "killed by signal " + std::to_string(sig) + " (" +
           (name != nullptr ? name : "?") + ")";
  }
  return "unrecognized wait status " + std::to_string(wait_status);
}

}  // namespace skewless
