// Minimal poll(2) wrapper: the worker's event loop waits on its control
// and data channels with ONE syscall and reads back which are ready.
//
// Priority is the caller's job, and it matters: the net worker always
// processes every ready CONTROL frame before the next data frame, so a
// seal, a heavy-set broadcast or a plan never waits behind queued tuple
// batches — the channel-separation contract, enforced at the consumer.
#pragma once

#include <string>
#include <vector>

namespace skewless {

class Poller {
 public:
  /// Registers `fd` under a caller-chosen token (its index in `ready`
  /// order is the registration order).
  void add(int fd, int token);

  /// Waits up to `timeout_ms` (< 0 = forever) and fills `ready` with the
  /// tokens of readable fds, in registration order. Returns false on a
  /// poll error (reason in last_error()); a timeout returns true with
  /// `ready` empty.
  [[nodiscard]] bool wait(int timeout_ms, std::vector<int>& ready);

  [[nodiscard]] const std::string& last_error() const { return last_error_; }

 private:
  struct Slot {
    int fd;
    int token;
  };
  std::vector<Slot> slots_;
  std::string last_error_;
};

}  // namespace skewless
