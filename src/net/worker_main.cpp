#include "net/worker_main.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <unordered_map>
#include <vector>

#include <sys/socket.h>
#include <unistd.h>

#include "engine/state.h"
#include "net/channel.h"
#include "net/poller.h"
#include "net/recovery.h"
#include "net/wire.h"
#include "sketch/sharded_worker_slab.h"
#include "sketch/worker_sketch_slab.h"

namespace skewless {
namespace {

Micros steady_now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Sinks emissions into a plain counter (one thread per process — no
/// atomics needed).
class CountingCollector final : public Collector {
 public:
  explicit CountingCollector(std::uint64_t& counter) : counter_(counter) {}
  void emit(const Tuple& /*tuple*/) override { ++counter_; }

 private:
  std::uint64_t& counter_;
};

/// Everything one worker process owns; the protocol handlers below are
/// methods so the state does not travel through a dozen parameters.
class NetWorker {
 public:
  NetWorker(int data_fd, int ctrl_fd, const NetWorkerOptions& options,
            const OperatorLogic& logic)
      : options_(options),
        logic_(logic),
        data_(data_fd),
        ctrl_(ctrl_fd),
        slab_(options.sketch, std::max<std::uint32_t>(1, options.shards)),
        collector_(outputs_) {
    // Same initial bucket capacity as the threaded worker's per-batch
    // scratch map. This is load-bearing for byte-identity: add_batch
    // folds keys in the map's iteration order, which depends on the
    // bucket history, so the two engines must grow their maps through
    // identical rehash points.
    local_.reserve(256);
  }

  int run() {
    if (!handshake()) return kWorkerExitHandshake;
    Poller poller;
    poller.add(ctrl_.fd(), kCtrl);
    poller.add(data_.fd(), kData);
    std::vector<int> ready;
    // With recovery on, the poll wakes at the heartbeat period even when
    // both channels are idle, so liveness beats keep flowing while the
    // driver is busy elsewhere.
    const int poll_timeout = options_.recovery
                                 ? std::max(1, options_.heartbeat_interval_ms)
                                 : -1;
    while (true) {
      const int rc = maybe_seal();
      if (rc >= 0) return rc;
      const int hb_rc = maybe_heartbeat();
      if (hb_rc >= 0) return hb_rc;
      if (!poller.wait(poll_timeout, ready)) {
        return fail(kWorkerExitChannel, "poller", poller.last_error().c_str());
      }
      // Control has strict priority: every ready ctrl frame is handled
      // before the next data frame. The driver's per-socket write order
      // plus AF_UNIX's synchronous delivery make this sufficient for the
      // cross-channel guarantees (a heavy set broadcast written before a
      // batch is always drained before it).
      bool ctrl_ready = false;
      bool data_ready = false;
      for (const int token : ready) {
        ctrl_ready |= token == kCtrl;
        data_ready |= token == kData;
      }
      if (ctrl_ready) {
        const int ctrl_rc = handle_ctrl_frame();
        if (ctrl_rc >= 0) return ctrl_rc;
        continue;  // re-poll: drain ALL queued control before any data
      }
      if (data_ready) {
        const int data_rc = handle_data_frame();
        if (data_rc >= 0) return data_rc;
      }
    }
  }

 private:
  static constexpr int kCtrl = 0;
  static constexpr int kData = 1;
  /// Handler return: -1 = keep running, >= 0 = exit with that code.
  static constexpr int kKeepRunning = -1;

  int fail(int code, const char* what, const char* detail) {
    std::fprintf(stderr, "[net-worker %u] %s: %s\n", options_.worker_id, what,
                 detail);
    return code;
  }

  /// Triggers any worker-side fault armed for this epoch's seal. Returns
  /// an exit code for kDrop, kKeepRunning otherwise (kWedge never
  /// returns; kGarble corrupts ctrl and lets the protocol continue).
  int maybe_fault(std::uint64_t epoch) {
    const FaultEvent* ev =
        options_.fault.match(options_.worker_id, epoch, options_.incarnation);
    if (ev == nullptr) return kKeepRunning;
    switch (ev->kind) {
      case FaultKind::kWedge:
        // Alive but silent: holds both sockets open and never speaks
        // again — only the driver's receive deadline can see this.
        for (;;) ::pause();
      case FaultKind::kGarble: {
        // Raw junk where the boundary summary belongs; the driver's
        // header validation rejects it as a corrupt frame.
        std::uint8_t junk[64];
        for (std::uint8_t& b : junk) b = 0xA5;
        (void)::send(ctrl_.fd(), junk, sizeof(junk), MSG_NOSIGNAL);
        return kKeepRunning;
      }
      case FaultKind::kDrop:
        data_.close();
        ctrl_.close();
        return kWorkerExitFault;
      case FaultKind::kKill:
        break;  // driver-side fault; nothing to do in the worker
    }
    return kKeepRunning;
  }

  /// Emits an epoch-progress liveness beat on ctrl when the heartbeat
  /// period has elapsed (recovery mode only).
  int maybe_heartbeat() {
    if (!options_.recovery) return kKeepRunning;
    const Micros now = steady_now_us();
    const Micros period =
        static_cast<Micros>(options_.heartbeat_interval_ms) * 1000;
    if (last_heartbeat_us_ != 0 && now - last_heartbeat_us_ < period) {
      return kKeepRunning;
    }
    last_heartbeat_us_ = now;
    scratch_.clear();
    encode_heartbeat(scratch_, HeartbeatPayload{epoch_batches_});
    if (!ctrl_.send(FrameType::kHeartbeat, 0, scratch_)) {
      return fail(kWorkerExitChannel, "send Heartbeat",
                  ctrl_.last_error().c_str());
    }
    return kKeepRunning;
  }

  bool handshake() {
    FrameHeader header;
    std::vector<std::uint8_t> payload;
    if (!ctrl_.recv(header, payload)) {
      fail(kWorkerExitHandshake, "handshake", ctrl_.last_error().c_str());
      return false;
    }
    if (header.type != FrameType::kHello) {
      fail(kWorkerExitHandshake, "handshake", "first frame is not Hello");
      return false;
    }
    ByteReader in(payload, ByteReader::Untrusted{});
    HelloPayload hello;
    if (!decode_hello(in, hello) || hello.worker_id != options_.worker_id ||
        hello.num_workers != options_.num_workers) {
      fail(kWorkerExitHandshake, "handshake", "Hello payload mismatch");
      return false;
    }
    scratch_.clear();
    encode_hello(scratch_, hello);
    if (!ctrl_.send(FrameType::kHello, 0, scratch_)) {
      fail(kWorkerExitHandshake, "handshake", ctrl_.last_error().c_str());
      return false;
    }
    return true;
  }

  /// Seals the epoch once every one of its batches has been processed:
  /// stamps + serializes the slab as the boundary summary, ships it on
  /// ctrl, and resets for the next epoch.
  int maybe_seal() {
    if (!seal_pending_ || epoch_batches_ != seal_target_) return kKeepRunning;
    slab_.set_epoch(seal_epoch_);
    scratch_.clear();
    slab_.serialize(scratch_);
    if (!ctrl_.send(FrameType::kSummary, seal_epoch_, scratch_)) {
      return fail(kWorkerExitChannel, "send Summary",
                  ctrl_.last_error().c_str());
    }
    slab_.clear();
    epoch_batches_ = 0;
    seal_pending_ = false;
    if (options_.recovery) {
      const int rc = send_checkpoint();
      if (rc >= 0) return rc;
    }
    return kKeepRunning;
  }

  /// Ships the post-seal durable snapshot: counters, the scratch map's
  /// bucket count (its rehash trajectory is byte-identity relevant), the
  /// state checksum, and every key state's serialized blob.
  int send_checkpoint() {
    CheckpointPayload cp;
    cp.epoch = seal_epoch_;
    cp.processed = processed_;
    cp.outputs = outputs_;
    cp.local_buckets = local_.bucket_count();
    cp.state_checksum = store_.checksum();
    cp.states.reserve(store_.size());
    for (const auto& [key, state] : store_.states()) {
      WireKeyState wire;
      wire.key = key;
      ByteWriter blob;
      state->serialize(blob);
      wire.blob = blob.take();
      cp.states.push_back(std::move(wire));
    }
    scratch_.clear();
    encode_checkpoint(scratch_, cp);
    if (!ctrl_.send(FrameType::kCheckpoint, cp.epoch, scratch_)) {
      return fail(kWorkerExitChannel, "send Checkpoint",
                  ctrl_.last_error().c_str());
    }
    return kKeepRunning;
  }

  /// Reinstalls a driver-held checkpoint after a respawn: replaces the
  /// whole store, restores the counters and the scratch map's bucket
  /// trajectory, and acks so the driver can start the replay.
  int handle_restore(ByteReader& in) {
    CheckpointPayload cp;
    if (!decode_checkpoint(in, cp)) {
      return fail(kWorkerExitCorruptFrame, "decode",
                  "corrupt Restore payload");
    }
    store_.clear();
    for (const WireKeyState& wire : cp.states) {
      ByteReader blob(wire.blob, ByteReader::Untrusted{});
      std::unique_ptr<KeyState> state = logic_.deserialize_state(blob);
      if (state == nullptr || !blob.ok() || !blob.exhausted()) {
        return fail(kWorkerExitCorruptFrame, "decode",
                    "corrupt checkpoint state blob");
      }
      store_.install_or_replace(wire.key, std::move(state));
    }
    processed_ = cp.processed;
    outputs_ = cp.outputs;
    if (cp.local_buckets > local_.bucket_count()) {
      local_.rehash(cp.local_buckets);
    }
    slab_.clear();
    epoch_batches_ = 0;
    seal_pending_ = false;
    scratch_.clear();
    encode_ack(scratch_, AckPayload{cp.epoch});
    if (!ctrl_.send(FrameType::kRestoreAck, cp.epoch, scratch_)) {
      return fail(kWorkerExitChannel, "send RestoreAck",
                  ctrl_.last_error().c_str());
    }
    return kKeepRunning;
  }

  int handle_ctrl_frame() {
    FrameHeader header;
    if (!ctrl_.recv(header, ctrl_payload_)) {
      return fail(kWorkerExitChannel, "ctrl recv", ctrl_.last_error().c_str());
    }
    ByteReader in(ctrl_payload_, ByteReader::Untrusted{});
    switch (header.type) {
      case FrameType::kSeal: {
        SealPayload seal;
        if (!decode_seal(in, seal)) {
          return fail(kWorkerExitCorruptFrame, "decode",
                      "corrupt Seal payload");
        }
        // Injected worker-side faults fire here: the seal receipt is the
        // protocol point every epoch passes through exactly once.
        const int fault_rc = maybe_fault(header.epoch);
        if (fault_rc >= 0) return fault_rc;
        seal_pending_ = true;
        seal_epoch_ = header.epoch;
        seal_target_ = seal.batches;
        return kKeepRunning;
      }
      case FrameType::kHeavySet: {
        std::vector<KeyId> keys;
        if (!decode_key_list(in, keys)) {
          return fail(kWorkerExitCorruptFrame, "decode",
                      "corrupt HeavySet payload");
        }
        slab_.set_heavy_keys(keys);
        return kKeepRunning;
      }
      case FrameType::kExtract:
        return handle_extract(in);
      case FrameType::kInstall:
        return handle_install(header.epoch, in);
      case FrameType::kRestore:
        return handle_restore(in);
      case FrameType::kExpire: {
        Micros watermark = 0;
        if (!decode_expire(in, watermark)) {
          return fail(kWorkerExitCorruptFrame, "decode",
                      "corrupt Expire payload");
        }
        store_.expire_before(watermark);
        return kKeepRunning;
      }
      case FrameType::kPlan: {
        PlanPayload plan;
        if (!decode_plan(in, plan)) {
          return fail(kWorkerExitCorruptFrame, "decode",
                      "corrupt Plan payload");
        }
        // The ack IS the point: it proves a control round-trip completes
        // while the data channel may be fully backlogged.
        scratch_.clear();
        encode_ack(scratch_, AckPayload{plan.seq});
        if (!ctrl_.send(FrameType::kPlanAck, header.epoch, scratch_)) {
          return fail(kWorkerExitChannel, "send PlanAck",
                      ctrl_.last_error().c_str());
        }
        return kKeepRunning;
      }
      case FrameType::kStop:
        return send_fin();
      default:
        return fail(kWorkerExitProtocol, "protocol",
                    "unexpected frame type on ctrl");
    }
  }

  int handle_extract(ByteReader& in) {
    std::vector<KeyId> keys;
    if (!decode_key_list(in, keys)) {
      return fail(kWorkerExitCorruptFrame, "decode",
                  "corrupt Extract payload");
    }
    std::vector<WireKeyState> out;
    out.reserve(keys.size());
    for (const KeyId key : keys) {
      std::unique_ptr<KeyState> state = store_.extract(key);
      if (state == nullptr) continue;  // key had no state yet
      WireKeyState wire;
      wire.key = key;
      ByteWriter blob;
      state->serialize(blob);
      wire.blob = blob.take();
      out.push_back(std::move(wire));
    }
    scratch_.clear();
    encode_key_states(scratch_, out);
    if (!ctrl_.send(FrameType::kMigrated, 0, scratch_)) {
      return fail(kWorkerExitChannel, "send Migrated",
                  ctrl_.last_error().c_str());
    }
    return kKeepRunning;
  }

  int handle_install(std::uint64_t epoch, ByteReader& in) {
    std::vector<WireKeyState> states;
    if (!decode_key_states(in, states)) {
      return fail(kWorkerExitCorruptFrame, "decode",
                  "corrupt Install payload");
    }
    for (const WireKeyState& wire : states) {
      ByteReader blob(wire.blob, ByteReader::Untrusted{});
      std::unique_ptr<KeyState> state = logic_.deserialize_state(blob);
      if (!blob.ok() || !blob.exhausted()) {
        return fail(kWorkerExitCorruptFrame, "decode",
                    "corrupt migrated state blob");
      }
      if (options_.recovery) {
        // Degraded-mode re-home installs are barrier-free (the driver
        // may still be re-routing tuples while this frame is in flight),
        // so a fresh state created a moment earlier must be replaceable.
        store_.install_or_replace(wire.key, std::move(state));
      } else {
        store_.install(wire.key, std::move(state));
      }
    }
    // The ack closes the migration barrier: the driver routes no
    // next-interval tuple to ANY worker until every destination has
    // confirmed its installs, so a tuple can never race its key's state.
    scratch_.clear();
    encode_ack(scratch_, AckPayload{epoch});
    if (!ctrl_.send(FrameType::kInstallAck, epoch, scratch_)) {
      return fail(kWorkerExitChannel, "send InstallAck",
                  ctrl_.last_error().c_str());
    }
    return kKeepRunning;
  }

  int handle_data_frame() {
    FrameHeader header;
    if (!data_.recv(header, data_payload_)) {
      return fail(kWorkerExitChannel, "data recv", data_.last_error().c_str());
    }
    if (header.type != FrameType::kBatch) {
      return fail(kWorkerExitProtocol, "protocol",
                  "non-Batch frame on the data channel");
    }
    ByteReader in(data_payload_, ByteReader::Untrusted{});
    if (!decode_tuple_batch(in, batch_)) {
      return fail(kWorkerExitCorruptFrame, "decode", "corrupt Batch payload");
    }
    process_batch();
    ++epoch_batches_;
    return kKeepRunning;
  }

  /// Mirrors ThreadedEngine::worker_loop's BatchMsg path exactly — same
  /// per-batch local aggregation, same slab fold — so a net run's slab
  /// contents match the in-process run's batch for batch.
  void process_batch() {
    const Micros now = steady_now_us();
    double latency_acc = 0.0;
    std::uint64_t latency_n = 0;
    local_.clear();
    for (const Tuple& t : batch_) {
      KeyState& state =
          store_.get_or_create(t.key, [&] { return logic_.make_state(); });
      const Bytes before = state.bytes();
      const Cost cost = logic_.process(t, state, collector_);
      const Bytes delta = std::max(0.0, state.bytes() - before);
      auto& entry = local_[t.key];
      entry.cost += cost;
      entry.state_bytes += delta;
      ++entry.frequency;
      latency_acc +=
          static_cast<double>(now - options_.engine_epoch_us - t.emit_micros);
      ++latency_n;
    }
    processed_ += batch_.size();
    slab_.add_batch(local_);
    WorkerSketchSlab::IntervalScalars& sc = slab_.scalars();
    sc.processed += batch_.size();
    sc.latency_sum_us += latency_acc;
    sc.latency_samples += latency_n;
  }

  int send_fin() {
    FinPayload fin;
    fin.state_checksum = store_.checksum();
    fin.state_entries = store_.size();
    fin.processed = processed_;
    fin.outputs = outputs_;
    scratch_.clear();
    encode_fin(scratch_, fin);
    if (!ctrl_.send(FrameType::kFin, 0, scratch_)) {
      return fail(kWorkerExitChannel, "send Fin", ctrl_.last_error().c_str());
    }
    return kWorkerExitOk;
  }

  NetWorkerOptions options_;
  const OperatorLogic& logic_;
  FrameChannel data_;
  FrameChannel ctrl_;
  StateStore store_;
  ShardedWorkerSlab slab_;
  std::uint64_t outputs_ = 0;
  std::uint64_t processed_ = 0;
  CountingCollector collector_;
  std::unordered_map<KeyId, WorkerSketchSlab::KeyAgg> local_;
  std::vector<Tuple> batch_;
  std::vector<std::uint8_t> ctrl_payload_;
  std::vector<std::uint8_t> data_payload_;
  ByteWriter scratch_;
  bool seal_pending_ = false;
  std::uint64_t seal_epoch_ = 0;
  std::uint64_t seal_target_ = 0;
  std::uint64_t epoch_batches_ = 0;
  Micros last_heartbeat_us_ = 0;
};

}  // namespace

int run_net_worker(int data_fd, int ctrl_fd, const NetWorkerOptions& options,
                   const OperatorLogic& logic) {
  NetWorker worker(data_fd, ctrl_fd, options, logic);
  return worker.run();
}

}  // namespace skewless
