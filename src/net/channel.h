// One framed, bidirectional byte channel over a connected stream socket.
//
// The engine gives every worker TWO of these over separate socketpairs:
// a data channel (tuple batches — the one that backpressures) and a
// control channel (seals, heavy sets, plans, migration). Keeping them on
// separate sockets is the whole point: a control frame is written to and
// read from its own kernel buffer, so it can never queue behind a data
// backlog — the force_push lesson from the in-process engine, applied to
// sockets.
//
// Error model: send/recv return false and record a human-readable reason
// (last_error()). A FrameChannel never aborts on peer-supplied bytes —
// the owner drops the connection instead.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/serde.h"
#include "net/frame.h"

namespace skewless {

/// Creates a connected AF_UNIX SOCK_STREAM pair (loopback, no ports).
/// Returns false with `error` set on failure.
[[nodiscard]] bool make_socket_pair(int fds[2], std::string& error);

class FrameChannel {
 public:
  FrameChannel() = default;
  explicit FrameChannel(int fd) : fd_(fd) {}
  ~FrameChannel() { close(); }

  FrameChannel(const FrameChannel&) = delete;
  FrameChannel& operator=(const FrameChannel&) = delete;
  FrameChannel(FrameChannel&& other) noexcept { *this = std::move(other); }
  FrameChannel& operator=(FrameChannel&& other) noexcept;

  /// Writes one complete frame (header + payload), looping over partial
  /// writes and EINTR. Blocks when the socket buffer is full — which is
  /// exactly the backpressure the data channel wants and the control
  /// channel avoids by carrying only small frames.
  [[nodiscard]] bool send(FrameType type, std::uint64_t epoch,
                          const std::uint8_t* payload, std::size_t size);
  [[nodiscard]] bool send(FrameType type, std::uint64_t epoch,
                          const ByteWriter& payload) {
    return send(type, epoch, payload.bytes().data(), payload.size());
  }

  /// Reads one complete frame. The header is validated (magic, version,
  /// type, payload cap) before the payload is read; `payload` is resized
  /// to exactly the payload bytes. Returns false on EOF, a socket error,
  /// or a rejected header.
  [[nodiscard]] bool recv(FrameHeader& header,
                          std::vector<std::uint8_t>& payload);

  /// Poll for readability: 1 = readable, 0 = timed out, -1 = error/hup
  /// with nothing to read. timeout_ms < 0 blocks indefinitely.
  [[nodiscard]] int wait_readable(int timeout_ms);

  /// Installs SO_SNDTIMEO + SO_RCVTIMEO so a send into a full buffer or
  /// a read of a half-written frame cannot block past the deadline —
  /// crash detection needs every channel operation to be bounded. 0
  /// clears the timeouts (blocking).
  void set_io_timeout_ms(int timeout_ms);

  [[nodiscard]] int fd() const { return fd_; }
  [[nodiscard]] bool is_open() const { return fd_ >= 0; }
  [[nodiscard]] const std::string& last_error() const { return last_error_; }
  /// True when the last failed operation hit a clean EOF (peer closed) —
  /// the crash-vs-corruption classifier recovery keys off.
  [[nodiscard]] bool eof() const { return eof_; }
  /// True when the last failed operation exceeded the channel's I/O
  /// timeout (a wedged peer, not a dead one).
  [[nodiscard]] bool timed_out() const { return timed_out_; }
  [[nodiscard]] std::uint64_t bytes_sent() const { return bytes_sent_; }
  [[nodiscard]] std::uint64_t bytes_received() const {
    return bytes_received_;
  }

  void close();

 private:
  [[nodiscard]] bool read_exact(std::uint8_t* dst, std::size_t n);

  int fd_ = -1;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t bytes_received_ = 0;
  std::string last_error_;
  bool eof_ = false;
  bool timed_out_ = false;
};

}  // namespace skewless
