#include "net/frame.h"

#include <cstdio>

namespace skewless {

const char* frame_type_name(FrameType type) {
  switch (type) {
    case FrameType::kHello: return "Hello";
    case FrameType::kBatch: return "Batch";
    case FrameType::kSeal: return "Seal";
    case FrameType::kSummary: return "Summary";
    case FrameType::kHeavySet: return "HeavySet";
    case FrameType::kExtract: return "Extract";
    case FrameType::kMigrated: return "Migrated";
    case FrameType::kInstall: return "Install";
    case FrameType::kInstallAck: return "InstallAck";
    case FrameType::kExpire: return "Expire";
    case FrameType::kPlan: return "Plan";
    case FrameType::kPlanAck: return "PlanAck";
    case FrameType::kStop: return "Stop";
    case FrameType::kFin: return "Fin";
    case FrameType::kCheckpoint: return "Checkpoint";
    case FrameType::kRestore: return "Restore";
    case FrameType::kRestoreAck: return "RestoreAck";
    case FrameType::kHeartbeat: return "Heartbeat";
  }
  return "?";
}

void encode_frame_header(ByteWriter& out, FrameType type, std::uint64_t epoch,
                         std::uint32_t payload_size) {
  out.u32(kFrameMagic);
  out.u8(kWireVersion);
  out.u8(static_cast<std::uint8_t>(type));
  out.u8(0);  // pad
  out.u8(0);
  out.u64(epoch);
  out.u32(payload_size);
}

bool decode_frame_header(const std::uint8_t* bytes, std::size_t size,
                         FrameHeader& header, std::string& error) {
  ByteReader in(bytes, size, ByteReader::Untrusted{});
  const std::uint32_t magic = in.u32();
  const std::uint8_t version = in.u8();
  const std::uint8_t type = in.u8();
  in.u8();  // pad
  in.u8();
  const std::uint64_t epoch = in.u64();
  const std::uint32_t payload_size = in.u32();
  if (!in.ok()) {
    error = "truncated frame header";
    return false;
  }
  char buf[96];
  if (magic != kFrameMagic) {
    std::snprintf(buf, sizeof(buf), "bad frame magic 0x%08x (want 0x%08x)",
                  magic, kFrameMagic);
    error = buf;
    return false;
  }
  if (version != kWireVersion) {
    std::snprintf(buf, sizeof(buf),
                  "wire version mismatch: peer speaks v%u, this build v%u",
                  version, kWireVersion);
    error = buf;
    return false;
  }
  if (type < kMinFrameType || type > kMaxFrameType) {
    std::snprintf(buf, sizeof(buf), "unknown frame type %u", type);
    error = buf;
    return false;
  }
  if (payload_size > kMaxFramePayload) {
    std::snprintf(buf, sizeof(buf), "frame payload %u exceeds cap %u",
                  payload_size, kMaxFramePayload);
    error = buf;
    return false;
  }
  header.type = static_cast<FrameType>(type);
  header.epoch = epoch;
  header.payload_size = payload_size;
  return true;
}

}  // namespace skewless
