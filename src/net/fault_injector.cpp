#include "net/fault_injector.h"

#include <cstdint>

#include "common/rng.h"

namespace skewless {

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kKill: return "kill";
    case FaultKind::kWedge: return "wedge";
    case FaultKind::kGarble: return "garble";
    case FaultKind::kDrop: return "drop";
  }
  return "?";
}

const FaultEvent* FaultPlan::match(std::uint32_t worker, std::uint64_t epoch,
                                   std::uint32_t incarnation) const {
  for (const FaultEvent& ev : events) {
    if (ev.worker != worker || ev.epoch != epoch) continue;
    if (!ev.sticky && incarnation > 0) continue;
    return &ev;
  }
  return nullptr;
}

namespace {

/// Parses a decimal run starting at `pos`; advances `pos` past it.
bool parse_u64(const std::string& s, std::size_t& pos, std::uint64_t& out) {
  if (pos >= s.size() || s[pos] < '0' || s[pos] > '9') return false;
  out = 0;
  while (pos < s.size() && s[pos] >= '0' && s[pos] <= '9') {
    out = out * 10 + static_cast<std::uint64_t>(s[pos] - '0');
    ++pos;
  }
  return true;
}

bool parse_event(const std::string& part, FaultEvent& ev, std::string& error) {
  const std::size_t colon = part.find(':');
  if (colon == std::string::npos) {
    error = "fault event '" + part + "': missing ':' after the kind";
    return false;
  }
  const std::string kind = part.substr(0, colon);
  if (kind == "kill") {
    ev.kind = FaultKind::kKill;
  } else if (kind == "wedge") {
    ev.kind = FaultKind::kWedge;
  } else if (kind == "garble") {
    ev.kind = FaultKind::kGarble;
  } else if (kind == "drop") {
    ev.kind = FaultKind::kDrop;
  } else {
    error = "unknown fault kind '" + kind + "' (kill|wedge|garble|drop)";
    return false;
  }
  bool have_worker = false;
  bool have_epoch = false;
  std::size_t pos = colon + 1;
  while (pos < part.size()) {
    if (part.compare(pos, 2, "w=") == 0) {
      pos += 2;
      std::uint64_t v = 0;
      if (!parse_u64(part, pos, v)) {
        error = "fault event '" + part + "': bad worker id";
        return false;
      }
      ev.worker = static_cast<std::uint32_t>(v);
      have_worker = true;
    } else if (part.compare(pos, 6, "epoch=") == 0) {
      pos += 6;
      std::uint64_t v = 0;
      if (!parse_u64(part, pos, v) || v == 0) {
        error = "fault event '" + part + "': bad epoch (1-based)";
        return false;
      }
      ev.epoch = v;
      have_epoch = true;
    } else if (part.compare(pos, 6, "sticky") == 0) {
      pos += 6;
      ev.sticky = true;
    } else {
      error = "fault event '" + part + "': unknown field at '" +
              part.substr(pos) + "'";
      return false;
    }
    if (pos < part.size()) {
      if (part[pos] != ',') {
        error = "fault event '" + part + "': expected ',' at '" +
                part.substr(pos) + "'";
        return false;
      }
      ++pos;
    }
  }
  if (!have_worker || !have_epoch) {
    error = "fault event '" + part + "': needs both w= and epoch=";
    return false;
  }
  return true;
}

}  // namespace

bool parse_fault_plan(const std::string& spec, FaultPlan& plan,
                      std::string& error) {
  plan.events.clear();
  std::size_t start = 0;
  while (start <= spec.size()) {
    std::size_t end = spec.find(';', start);
    if (end == std::string::npos) end = spec.size();
    const std::string part = spec.substr(start, end - start);
    if (!part.empty()) {
      FaultEvent ev;
      if (!parse_event(part, ev, error)) return false;
      plan.events.push_back(ev);
    }
    if (end == spec.size()) break;
    start = end + 1;
  }
  if (plan.events.empty()) {
    error = "fault spec '" + spec + "' contains no events";
    return false;
  }
  return true;
}

FaultPlan randomized_fault_plan(std::uint64_t seed, std::uint32_t workers,
                                std::uint64_t epochs, std::size_t count) {
  FaultPlan plan;
  if (workers == 0 || epochs == 0) return plan;
  Xoshiro256 rng(seed);
  constexpr FaultKind kKinds[] = {FaultKind::kKill, FaultKind::kWedge,
                                  FaultKind::kGarble, FaultKind::kDrop};
  for (std::size_t i = 0; i < count; ++i) {
    FaultEvent ev;
    ev.kind = kKinds[i % (sizeof(kKinds) / sizeof(kKinds[0]))];
    ev.worker = static_cast<std::uint32_t>(rng.next_below(workers));
    ev.epoch = 1 + rng.next_below(epochs);
    plan.events.push_back(ev);
  }
  return plan;
}

}  // namespace skewless
