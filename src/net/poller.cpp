#include "net/poller.h"

#include <cerrno>
#include <cstring>

#include <poll.h>

namespace skewless {

void Poller::add(int fd, int token) { slots_.push_back(Slot{fd, token}); }

bool Poller::wait(int timeout_ms, std::vector<int>& ready) {
  ready.clear();
  std::vector<struct pollfd> pfds(slots_.size());
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    pfds[i].fd = slots_[i].fd;
    pfds[i].events = POLLIN;
    pfds[i].revents = 0;
  }
  while (true) {
    const int r = ::poll(pfds.data(), pfds.size(), timeout_ms);
    if (r < 0) {
      if (errno == EINTR) continue;
      last_error_ = std::string("poll: ") + std::strerror(errno);
      return false;
    }
    break;
  }
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    // POLLHUP with buffered data still reads fine; a bare hangup is
    // surfaced as readable too and the subsequent recv reports EOF
    // cleanly — one error path instead of two.
    if ((pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
      ready.push_back(slots_[i].token);
    }
  }
  return true;
}

}  // namespace skewless
