// Bounded queues used by the threaded engine.
//
// BoundedMpmcQueue: mutex + condition_variable, multi-producer
// multi-consumer, with close() semantics for clean shutdown. The threaded
// engine moves batches, not single tuples, through this queue, so the lock
// is amortized and uncontended in practice.
//
// SpscRing: single-producer single-consumer lock-free ring used on the
// spout -> router edge where we know the endpoints are single threads.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

#include "common/assert.h"

namespace skewless {

template <typename T>
class BoundedMpmcQueue {
 public:
  explicit BoundedMpmcQueue(std::size_t capacity) : capacity_(capacity) {
    SKW_EXPECTS(capacity > 0);
  }

  /// Blocks until space is available or the queue is closed.
  /// Returns false if the queue was closed (item is dropped).
  bool push(T item) {
    std::unique_lock lock(mu_);
    not_full_.wait(lock, [&] { return items_.size() < capacity_ || closed_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Enqueues regardless of the capacity bound; returns false only when
  /// the queue is closed. For CONTROL-PLANE messages (the threaded
  /// engine's interval seals): the capacity bound exists to backpressure
  /// the data path, and a boundary message that blocked behind a full
  /// data queue would stall exactly the ingestion the asynchronous
  /// boundary merge exists to keep flowing. At most O(1) such messages
  /// are in flight per queue per interval, so the bound is exceeded by a
  /// constant.
  bool force_push(T item) {
    {
      std::lock_guard lock(mu_);
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push; returns false when full or closed.
  bool try_push(T item) {
    {
      std::lock_guard lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed and drained.
  std::optional<T> pop() {
    std::unique_lock lock(mu_);
    not_empty_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;  // closed and drained
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    std::optional<T> item;
    {
      std::lock_guard lock(mu_);
      if (items_.empty()) return std::nullopt;
      item = std::move(items_.front());
      items_.pop_front();
    }
    not_full_.notify_one();
    return item;
  }

  /// Wakes all waiters; subsequent pushes fail, pops drain then return
  /// nullopt.
  void close() {
    {
      std::lock_guard lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard lock(mu_);
    return items_.size();
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard lock(mu_);
    return closed_;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  std::size_t capacity_;
  bool closed_ = false;
};

/// Lock-free single-producer single-consumer ring buffer.
/// Capacity is rounded up to a power of two; one slot is sacrificed to
/// distinguish full from empty.
template <typename T>
class SpscRing {
 public:
  explicit SpscRing(std::size_t min_capacity) {
    std::size_t cap = 2;
    while (cap < min_capacity + 1) cap <<= 1;
    buffer_.resize(cap);
    mask_ = cap - 1;
  }

  /// Producer side. Returns false when full.
  bool try_push(T item) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t next = (head + 1) & mask_;
    if (next == tail_.load(std::memory_order_acquire)) return false;
    buffer_[head] = std::move(item);
    head_.store(next, std::memory_order_release);
    return true;
  }

  /// Consumer side. Returns nullopt when empty.
  std::optional<T> try_pop() {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail == head_.load(std::memory_order_acquire)) return std::nullopt;
    T item = std::move(buffer_[tail]);
    tail_.store((tail + 1) & mask_, std::memory_order_release);
    return item;
  }

  [[nodiscard]] bool empty() const {
    return tail_.load(std::memory_order_acquire) ==
           head_.load(std::memory_order_acquire);
  }

  [[nodiscard]] std::size_t capacity() const { return buffer_.size() - 1; }

 private:
  std::vector<T> buffer_;
  std::size_t mask_ = 0;
  alignas(64) std::atomic<std::size_t> head_{0};  // producer-owned
  alignas(64) std::atomic<std::size_t> tail_{0};  // consumer-owned
};

}  // namespace skewless
