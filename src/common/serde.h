// Byte-level serialization shared by key-state migration and the net
// layer's wire formats. The in-process engine could move KeyState
// pointers directly, but a distributed deployment ships bytes;
// round-tripping through this codec keeps the migration path honest
// (costs real bytes, loses nothing) and is what the migration-fidelity
// tests exercise.
//
// Format: little-endian, length-prefixed primitives. Versioning lives one
// layer up: every socket frame starts with a magic + version header
// (net/frame.h) that rejects mismatched peers before any payload field is
// decoded, so the payload encodings here stay version-free.
//
// Two trust levels:
//  * ABORTING (default) — an overrun is a caller bug (in-process
//    migration payloads are produced by our own serializers), so
//    SKW_EXPECTS fires.
//  * CHECKED (ByteReader::Untrusted tag) — input arrived over a socket
//    and may be truncated or corrupt. Failed reads return zero values,
//    set a sticky error flag (ok() == false), and never abort: the
//    connection owner rejects the frame and drops the peer instead of
//    taking the whole controller down.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/assert.h"

namespace skewless {

/// Append-only byte sink.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { bytes_.push_back(v); }

  void u32(std::uint32_t v) { append_raw(&v, sizeof(v)); }
  void u64(std::uint64_t v) { append_raw(&v, sizeof(v)); }
  void i64(std::int64_t v) { append_raw(&v, sizeof(v)); }
  void f64(double v) { append_raw(&v, sizeof(v)); }

  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    append_raw(s.data(), s.size());
  }

  /// Bulk append of `n` raw bytes — the fast path for arrays of
  /// trivially-copyable wire structs (tuple batches, fused sketch cells).
  void append(const void* data, std::size_t n) { append_raw(data, n); }

  /// Drops the contents but keeps the buffer capacity, so a reused
  /// per-frame writer allocates nothing in steady state.
  void clear() { bytes_.clear(); }

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const {
    return bytes_;
  }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(bytes_); }
  [[nodiscard]] std::size_t size() const { return bytes_.size(); }

 private:
  void append_raw(const void* data, std::size_t n) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    bytes_.insert(bytes_.end(), p, p + n);
  }

  std::vector<std::uint8_t> bytes_;
};

/// Sequential byte source. Default (trusted) mode aborts on overrun;
/// constructed with the Untrusted tag it switches to the checked mode
/// documented in the header comment.
class ByteReader {
 public:
  /// Tag selecting the checked (non-aborting) mode for socket input.
  struct Untrusted {};

  explicit ByteReader(const std::vector<std::uint8_t>& bytes)
      : data_(bytes.data()), size_(bytes.size()) {}
  ByteReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  ByteReader(const std::vector<std::uint8_t>& bytes, Untrusted)
      : data_(bytes.data()), size_(bytes.size()), checked_(true) {}
  ByteReader(const std::uint8_t* data, std::size_t size, Untrusted)
      : data_(data), size_(size), checked_(true) {}

  std::uint8_t u8() {
    if (!require(1)) return 0;
    return data_[pos_++];
  }
  std::uint32_t u32() { return read_raw<std::uint32_t>(); }
  std::uint64_t u64() { return read_raw<std::uint64_t>(); }
  std::int64_t i64() { return read_raw<std::int64_t>(); }
  double f64() { return read_raw<double>(); }

  std::string str() {
    const std::uint32_t n = u32();
    if (!require(n)) return std::string();
    std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return s;
  }

  /// Bulk read of `n` raw bytes into `dst`. Returns whether the bytes
  /// were available (always true in aborting mode — it aborts instead).
  bool read_into(void* dst, std::size_t n) {
    if (!require(n)) return false;
    std::memcpy(dst, data_ + pos_, n);
    pos_ += n;
    return true;
  }

  /// Checked-mode guard for length-prefixed containers: true when
  /// `count` elements of at least `min_elem_bytes` serialized bytes each
  /// could possibly fit in the remaining input. Rejecting an impossible
  /// count here stops a corrupt length prefix from driving a giant
  /// allocation before the per-element reads would catch it.
  bool fits(std::uint64_t count, std::size_t min_elem_bytes) {
    SKW_ASSERT(min_elem_bytes > 0);
    if (failed_) return false;
    if (count <= remaining() / min_elem_bytes) return true;
    if (!checked_) SKW_EXPECTS(count <= remaining() / min_elem_bytes);
    failed_ = true;
    return false;
  }

  /// Marks the input rejected for a decoder-level (semantic) reason —
  /// e.g. a geometry mismatch — through the same sticky flag an overrun
  /// sets, so callers have one error channel per payload.
  void fail() {
    if (!checked_) SKW_EXPECTS(checked_);
    failed_ = true;
  }

  /// Checked mode: true until any read overran or fail() was called.
  /// Always true in aborting mode (failures abort instead).
  [[nodiscard]] bool ok() const { return !failed_; }

  [[nodiscard]] bool exhausted() const { return pos_ == size_; }
  [[nodiscard]] std::size_t remaining() const { return size_ - pos_; }

 private:
  /// One bounds check for every read: aborting mode keeps the historic
  /// SKW_EXPECTS; checked mode trips the sticky flag (all later reads
  /// return zero values without touching memory).
  bool require(std::size_t n) {
    if (failed_) return false;
    if (n <= size_ - pos_) return true;
    if (!checked_) SKW_EXPECTS(pos_ + n <= size_);
    failed_ = true;
    return false;
  }

  template <typename T>
  T read_raw() {
    if (!require(sizeof(T))) return T{};
    T v;
    std::memcpy(&v, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool checked_ = false;
  bool failed_ = false;
};

}  // namespace skewless
