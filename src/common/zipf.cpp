#include "common/zipf.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/assert.h"

namespace skewless {

ZipfDistribution::ZipfDistribution(std::uint64_t num_keys, double skew,
                                   bool permute_ranks, std::uint64_t seed)
    : num_keys_(num_keys), skew_(skew) {
  SKW_EXPECTS(num_keys > 0);
  SKW_EXPECTS(skew >= 0.0);
  cdf_.resize(num_keys);
  double acc = 0.0;
  for (std::uint64_t r = 0; r < num_keys; ++r) {
    acc += 1.0 / std::pow(static_cast<double>(r + 1), skew);
    cdf_[r] = acc;
  }
  const double norm = acc;
  for (auto& c : cdf_) c /= norm;
  cdf_.back() = 1.0;  // guard against rounding

  rank_to_key_.resize(num_keys);
  std::iota(rank_to_key_.begin(), rank_to_key_.end(), KeyId{0});
  if (permute_ranks) {
    Xoshiro256 rng(seed);
    for (std::uint64_t i = num_keys - 1; i > 0; --i) {
      const std::uint64_t j = rng.next_below(i + 1);
      std::swap(rank_to_key_[i], rank_to_key_[j]);
    }
  }
}

KeyId ZipfDistribution::sample(Xoshiro256& rng) const {
  const double u = rng.next_double();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  const auto rank = static_cast<std::uint64_t>(it - cdf_.begin());
  return rank_to_key_[rank];
}

double ZipfDistribution::probability(KeyId key) const {
  SKW_EXPECTS(key < num_keys_);
  // Invert the permutation lazily: probability queries are test-path only.
  for (std::uint64_t r = 0; r < num_keys_; ++r) {
    if (rank_to_key_[r] == key) {
      const double lo = (r == 0) ? 0.0 : cdf_[r - 1];
      return cdf_[r] - lo;
    }
  }
  SKW_ASSERT(false);
  return 0.0;
}

std::vector<std::uint64_t> ZipfDistribution::expected_counts(
    std::uint64_t total_tuples) const {
  std::vector<std::uint64_t> counts(num_keys_, 0);
  // Largest-remainder rounding so that the counts sum exactly.
  std::vector<std::pair<double, std::uint64_t>> remainders;
  remainders.reserve(num_keys_);
  std::uint64_t assigned = 0;
  for (std::uint64_t r = 0; r < num_keys_; ++r) {
    const double lo = (r == 0) ? 0.0 : cdf_[r - 1];
    const double expected =
        (cdf_[r] - lo) * static_cast<double>(total_tuples);
    const auto floor_part = static_cast<std::uint64_t>(expected);
    counts[rank_to_key_[r]] = floor_part;
    assigned += floor_part;
    remainders.emplace_back(expected - static_cast<double>(floor_part),
                            rank_to_key_[r]);
  }
  std::sort(remainders.begin(), remainders.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  for (std::uint64_t i = 0; assigned < total_tuples && i < remainders.size();
       ++i, ++assigned) {
    ++counts[remainders[i].second];
  }
  return counts;
}

KeyId ZipfDistribution::key_at_rank(std::uint64_t rank) const {
  SKW_EXPECTS(rank < num_keys_);
  return rank_to_key_[rank];
}

}  // namespace skewless
