// Core scalar type aliases shared by every module.
#pragma once

#include <cstdint>
#include <limits>

namespace skewless {

/// Identifier of a key in the stream's key domain K. Keys are dense
/// integers in [0, K); textual keys (e.g. words) are interned to KeyId by
/// the workload generators.
using KeyId = std::uint64_t;

/// Identifier of a task instance (worker) inside one logical operator.
/// Instances of a downstream operator D are dense integers in [0, N_D).
using InstanceId = std::int32_t;

/// Sentinel meaning "no instance" — used by the compact representation to
/// model a key temporarily disassociated into the candidate set C.
inline constexpr InstanceId kNilInstance = -1;

/// Index of a discrete time interval T_i.
using IntervalId = std::int64_t;

/// Computation cost c_i(k): CPU resource consumed by all tuples with key k
/// during one interval. Unit: microseconds of service time.
using Cost = double;

/// Memory/state size s_i(k) or S_i(k, w). Unit: bytes.
using Bytes = double;

/// Virtual or wall-clock time in microseconds.
using Micros = std::int64_t;

inline constexpr Micros kMicrosPerSecond = 1'000'000;

/// A value guaranteed to compare greater than any real cost.
inline constexpr Cost kInfiniteCost = std::numeric_limits<Cost>::infinity();

}  // namespace skewless
