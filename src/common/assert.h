// Lightweight contract-checking macros used across the library.
//
// Follows the C++ Core Guidelines (I.6/I.8: prefer Expects()/Ensures()-style
// contract statements). We keep checks enabled in all build types: the
// algorithms in this library are control-plane code (rebalance planning runs
// once per interval), so the cost of checking is negligible compared to the
// cost of silently mis-planning a migration.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace skewless {

[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line) {
  std::fprintf(stderr, "skewless: %s failed: %s at %s:%d\n", kind, expr, file,
               line);
  std::abort();
}

}  // namespace skewless

// Precondition on a public API boundary.
#define SKW_EXPECTS(cond)                                                 \
  ((cond) ? static_cast<void>(0)                                          \
          : ::skewless::contract_failure("precondition", #cond, __FILE__, \
                                         __LINE__))

// Postcondition / invariant established by the implementation.
#define SKW_ENSURES(cond)                                                  \
  ((cond) ? static_cast<void>(0)                                           \
          : ::skewless::contract_failure("postcondition", #cond, __FILE__, \
                                         __LINE__))

// Internal sanity check.
#define SKW_ASSERT(cond)                                                \
  ((cond) ? static_cast<void>(0)                                        \
          : ::skewless::contract_failure("assertion", #cond, __FILE__, \
                                         __LINE__))
