// CPU topology for pinning: which logical CPUs are distinct physical
// cores vs SMT siblings, and (with libnuma) which node a CPU's memory
// lives on. Parsed once from /sys; falls back to the identity order
// when sysfs is unavailable so --pin never breaks.
#pragma once

#include <cstddef>
#include <vector>

namespace skewless {

struct CpuTopology {
  /// std::thread::hardware_concurrency() (≥ 1).
  unsigned hardware_threads = 1;
  /// Number of distinct (package, core) pairs seen in sysfs.
  unsigned physical_cores = 1;
  /// True when hardware_threads > physical_cores (SMT siblings exist).
  bool smt = false;
  /// Logical CPU ids ordered for pinning: the first CPU of every
  /// distinct physical core (in CPU-index order), then the remaining
  /// SMT siblings. Pinning thread i to pin_order[i % size] spreads work
  /// across physical cores before doubling up on hyperthreads.
  std::vector<int> pin_order;
};

/// The host topology, probed once (thread-safe static init).
[[nodiscard]] const CpuTopology& cpu_topology();

/// Bind the calling thread's memory-allocation preference to the NUMA
/// node owning `cpu`. No-op (returns false) when the build lacks
/// libnuma, the host has a single node, or `cpu` is invalid.
bool bind_current_thread_to_node_of_cpu(int cpu);

/// True when this binary was built with libnuma support.
[[nodiscard]] bool numa_support_compiled();

}  // namespace skewless
