// Console table / CSV emitter for the benchmark harness.
//
// Every bench binary prints the series of one paper figure; a uniform
// fixed-width table plus a machine-readable CSV block keeps the output
// both human-diffable against the paper and easy to plot.
#pragma once

#include <string>
#include <vector>

namespace skewless {

class ResultTable {
 public:
  explicit ResultTable(std::string title, std::vector<std::string> columns);

  /// Appends one row; the number of cells must match the column count.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  void add_row_numeric(const std::vector<double>& cells, int precision = 3);

  /// Renders the aligned table followed by a `# CSV` block to stdout.
  void print() const;

  /// CSV text (header + rows), e.g. for tee-ing into files.
  [[nodiscard]] std::string to_csv() const;

  [[nodiscard]] std::size_t num_rows() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (helper for mixed-type rows).
[[nodiscard]] std::string fmt(double value, int precision = 3);

}  // namespace skewless
