// Hashing primitives: 64-bit finalizers and a string hash used when
// interning textual keys.
#pragma once

#include <cstdint>
#include <string_view>

#include "common/rng.h"

namespace skewless {

/// FNV-1a 64-bit string hash. Used only to intern textual keys (words,
/// stock symbols) into the dense KeyId domain, never on the routing path.
constexpr std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Seeded 64-bit hash of a 64-bit key. The seed lets the consistent-hash
/// ring, PKG's two choices, and tests derive independent hash functions
/// from the same primitive.
constexpr std::uint64_t hash64(std::uint64_t key, std::uint64_t seed = 0) {
  return mix64(key ^ (seed * 0xda942042e4dd58b5ULL + 0x2545f4914f6cdd1dULL));
}

}  // namespace skewless
