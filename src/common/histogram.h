// Fixed-bin histogram for latency/size distributions: O(1) insertion,
// mergeable across threads, quantile estimates by linear interpolation
// within the owning bin.
#pragma once

#include <cstdint>
#include <vector>

#include "common/assert.h"

namespace skewless {

class Histogram {
 public:
  /// Bins cover [lo, hi) evenly; values outside clamp to the edge bins.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double value, std::uint64_t weight = 1);

  /// Estimated q-quantile (q in [0, 1]); 0 for an empty histogram.
  [[nodiscard]] double quantile(double q) const;

  [[nodiscard]] std::uint64_t count() const { return total_; }
  [[nodiscard]] double mean() const {
    return total_ ? sum_ / static_cast<double>(total_) : 0.0;
  }
  [[nodiscard]] std::size_t num_bins() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t bin_count(std::size_t bin) const {
    SKW_EXPECTS(bin < counts_.size());
    return counts_[bin];
  }

  /// Merges another histogram with identical binning.
  void merge(const Histogram& other);

  void clear();

 private:
  [[nodiscard]] std::size_t bin_of(double value) const;
  [[nodiscard]] double bin_lo(std::size_t bin) const;

  double lo_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  double sum_ = 0.0;
};

}  // namespace skewless
