// Zipf(z) distribution over a dense integer key domain, plus helpers to
// produce exact expected-frequency snapshots (Table II's synthetic
// workload: "tuples follow Zipf distributions controlled by skewness
// parameter z").
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/types.h"

namespace skewless {

/// Samples ranks 1..K with P(rank = r) proportional to 1 / r^z.
///
/// Sampling uses inversion on a precomputed CDF (O(log K) per sample, exact
/// for any z >= 0 including the uniform case z = 0). The mapping from rank
/// to KeyId is an optional permutation so that "hot" keys are not the
/// numerically smallest ones (which would correlate with hashing artifacts
/// in tests).
class ZipfDistribution {
 public:
  /// `num_keys` = K, `skew` = z in the paper (0 = uniform, 1 = classic
  /// Zipf). `permute_ranks` shuffles the rank->key mapping with `seed`.
  ZipfDistribution(std::uint64_t num_keys, double skew,
                   bool permute_ranks = true, std::uint64_t seed = 0x217f);

  /// Draws one key.
  [[nodiscard]] KeyId sample(Xoshiro256& rng) const;

  /// Probability mass of the given key.
  [[nodiscard]] double probability(KeyId key) const;

  /// Expected per-key counts for a snapshot of `total_tuples` tuples,
  /// rounded so the counts sum to exactly `total_tuples`. Index = KeyId.
  [[nodiscard]] std::vector<std::uint64_t> expected_counts(
      std::uint64_t total_tuples) const;

  [[nodiscard]] std::uint64_t num_keys() const { return num_keys_; }
  [[nodiscard]] double skew() const { return skew_; }

  /// Key occupying the given zero-based rank (rank 0 = hottest).
  [[nodiscard]] KeyId key_at_rank(std::uint64_t rank) const;

 private:
  std::uint64_t num_keys_;
  double skew_;
  std::vector<double> cdf_;          // cdf_[r] = P(rank <= r+1)
  std::vector<KeyId> rank_to_key_;   // permutation (identity if !permute)
};

}  // namespace skewless
