// Minimal leveled logger. Off by default above WARN so bench output stays
// clean; examples turn on INFO to narrate the rebalance protocol.
#pragma once

#include <cstdarg>
#include <cstdio>

namespace skewless {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global log threshold; messages below it are suppressed.
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

/// printf-style logging to stderr with a level prefix.
void log_message(LogLevel level, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

}  // namespace skewless

#define SKW_LOG_DEBUG(...) \
  ::skewless::log_message(::skewless::LogLevel::kDebug, __VA_ARGS__)
#define SKW_LOG_INFO(...) \
  ::skewless::log_message(::skewless::LogLevel::kInfo, __VA_ARGS__)
#define SKW_LOG_WARN(...) \
  ::skewless::log_message(::skewless::LogLevel::kWarn, __VA_ARGS__)
#define SKW_LOG_ERROR(...) \
  ::skewless::log_message(::skewless::LogLevel::kError, __VA_ARGS__)
