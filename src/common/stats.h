// Streaming and batch statistics used by the metrics pipeline and the
// benchmark harness: Welford moments, percentiles, CDF sampling.
#pragma once

#include <cstddef>
#include <vector>

namespace skewless {

/// Numerically stable streaming mean/variance (Welford's algorithm).
class Welford {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  /// Population variance; 0 for fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }

  /// Merges another accumulator (parallel reduction, Chan et al.).
  void merge(const Welford& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Percentile of a sample set with linear interpolation; `q` in [0, 1].
/// Sorts a copy — intended for end-of-run reporting, not hot paths.
[[nodiscard]] double percentile(std::vector<double> values, double q);

/// In-place variant for repeated queries on the same sample set.
[[nodiscard]] double percentile_sorted(const std::vector<double>& sorted,
                                       double q);

/// Evenly spaced CDF points over a sample set: returns pairs
/// (quantile in [0,1], value), `points` of them, for plotting the Fig. 7
/// style cumulative skewness curves.
[[nodiscard]] std::vector<std::pair<double, double>> cdf_points(
    std::vector<double> values, int points);

}  // namespace skewless
