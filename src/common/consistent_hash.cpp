#include "common/consistent_hash.h"

#include <algorithm>

#include "common/assert.h"
#include "common/hash.h"
#include "sketch/simd/sketch_kernels.h"

namespace skewless {

ConsistentHashRing::ConsistentHashRing(InstanceId num_instances,
                                       int virtual_nodes, std::uint64_t seed)
    : num_instances_(0), virtual_nodes_(virtual_nodes), seed_(seed) {
  SKW_EXPECTS(num_instances > 0);
  SKW_EXPECTS(virtual_nodes > 0);
  ring_.reserve(static_cast<std::size_t>(num_instances) *
                static_cast<std::size_t>(virtual_nodes));
  for (InstanceId i = 0; i < num_instances; ++i) add_instance();
}

void ConsistentHashRing::insert_instance_points(InstanceId id) {
  for (int v = 0; v < virtual_nodes_; ++v) {
    const std::uint64_t pos =
        hash64(static_cast<std::uint64_t>(id) * 0x9e3779b1ULL +
                   static_cast<std::uint64_t>(v),
               seed_);
    ring_.push_back(RingPoint{pos, id});
  }
  std::sort(ring_.begin(), ring_.end());
}

InstanceId ConsistentHashRing::owner(KeyId key) const {
  SKW_EXPECTS(!ring_.empty());
  const std::uint64_t h = hash64(key, seed_ ^ 0xabcdef12345ULL);
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), RingPoint{h, -1},
      [](const RingPoint& a, const RingPoint& b) {
        return a.position < b.position;
      });
  if (it == ring_.end()) it = ring_.begin();  // wrap around the ring
  return it->instance;
}

void ConsistentHashRing::owner_batch(const KeyId* keys, std::size_t n,
                                     InstanceId* out) const {
  SKW_EXPECTS(!ring_.empty());
  thread_local std::vector<std::uint64_t> hashes;
  hashes.resize(n);
  // KeyId IS uint64_t (common/types.h), so the key array feeds the
  // batched hash kernel directly; the per-key ring search then runs over
  // hot hashes with no hash latency on its critical path.
  simd::active_kernels().hash64_batch(keys, n, seed_ ^ 0xabcdef12345ULL,
                                      hashes.data());
  const auto begin = ring_.begin();
  const auto end = ring_.end();
  for (std::size_t i = 0; i < n; ++i) {
    auto it = std::lower_bound(begin, end, RingPoint{hashes[i], -1},
                               [](const RingPoint& a, const RingPoint& b) {
                                 return a.position < b.position;
                               });
    if (it == end) it = begin;  // wrap around the ring
    out[i] = it->instance;
  }
}

void ConsistentHashRing::add_instance() {
  insert_instance_points(num_instances_);
  ++num_instances_;
}

void ConsistentHashRing::remove_last_instance() {
  SKW_EXPECTS(num_instances_ > 1);
  const InstanceId victim = num_instances_ - 1;
  ring_.erase(std::remove_if(ring_.begin(), ring_.end(),
                             [victim](const RingPoint& p) {
                               return p.instance == victim;
                             }),
              ring_.end());
  --num_instances_;
}

}  // namespace skewless
