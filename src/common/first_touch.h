// FirstTouchArray — a fixed-size zero-initialized array whose backing
// pages are NOT committed at construction. On Linux, anonymous private
// mmap hands out lazily-zeroed pages: physical frames are allocated on
// first WRITE, on the NUMA node of the writing thread (first-touch
// policy). A std::vector would defeat that — its constructor zero-fills
// on the constructing thread, committing every page on the driver's
// node before the worker ever runs.
//
// Contract: the constructor maps but never touches; call prefault() (or
// just start writing) from the thread that owns the memory. Values read
// before any write are zero, exactly like the vector it replaces.
#pragma once

#include <cstddef>
#include <cstring>
#include <type_traits>
#include <utility>

#if defined(__linux__)
#include <sys/mman.h>
#include <unistd.h>
#define SKEWLESS_FIRST_TOUCH_MMAP 1
#else
#include <cstdlib>
#define SKEWLESS_FIRST_TOUCH_MMAP 0
#endif

namespace skewless {

template <typename T>
class FirstTouchArray {
  static_assert(std::is_trivially_copyable_v<T>,
                "FirstTouchArray elements are materialized as zero bytes");

 public:
  FirstTouchArray() = default;

  explicit FirstTouchArray(std::size_t n) { reset(n); }

  FirstTouchArray(FirstTouchArray&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)),
        size_(std::exchange(other.size_, 0)),
        bytes_(std::exchange(other.bytes_, 0)) {}

  FirstTouchArray& operator=(FirstTouchArray&& other) noexcept {
    if (this != &other) {
      release();
      data_ = std::exchange(other.data_, nullptr);
      size_ = std::exchange(other.size_, 0);
      bytes_ = std::exchange(other.bytes_, 0);
    }
    return *this;
  }

  FirstTouchArray(const FirstTouchArray&) = delete;
  FirstTouchArray& operator=(const FirstTouchArray&) = delete;

  ~FirstTouchArray() { release(); }

  /// Drop the old mapping and create a fresh untouched one of `n`
  /// elements. The new pages are zero on first read and placed by first
  /// write — do not touch them here.
  void reset(std::size_t n) {
    release();
    if (n == 0) return;
    bytes_ = n * sizeof(T);
#if SKEWLESS_FIRST_TOUCH_MMAP
    void* p = ::mmap(nullptr, bytes_, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (p == MAP_FAILED) {
      data_ = nullptr;
      bytes_ = 0;
      size_ = 0;
      return;
    }
    data_ = static_cast<T*>(p);
#else
    // Portability fallback: calloc is typically lazy-zero too, but we
    // make no placement promise off-Linux.
    data_ = static_cast<T*>(std::calloc(n, sizeof(T)));
    if (data_ == nullptr) {
      bytes_ = 0;
      size_ = 0;
      return;
    }
#endif
    size_ = n;
  }

  /// Commit every page from the CALLING thread by writing a zero into
  /// each — a write, not a read: read faults map the shared zero page
  /// without committing, and a later write would still fault wherever
  /// that write happens. Writing zero over lazy-zero pages is
  /// value-neutral, so this is safe any time before first real use.
  void prefault() {
    if (data_ == nullptr) return;
#if SKEWLESS_FIRST_TOUCH_MMAP
    const std::size_t page =
        static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
#else
    const std::size_t page = 4096;
#endif
    volatile unsigned char* bytes =
        reinterpret_cast<volatile unsigned char*>(data_);
    for (std::size_t off = 0; off < bytes_; off += page) bytes[off] = 0;
  }

  /// Zero the contents in place (the clear() path — pages stay where
  /// first touch put them; memset does not migrate committed frames).
  void zero() {
    // void* cast: T may carry zero-valued NSDMIs (trivially copyable but
    // not trivially default constructible); all-zero bytes are its value
    // representation here by contract.
    if (data_ != nullptr) std::memset(static_cast<void*>(data_), 0, bytes_);
  }

  [[nodiscard]] T* data() { return data_; }
  [[nodiscard]] const T* data() const { return data_; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t memory_bytes() const { return bytes_; }

  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }

  [[nodiscard]] T* begin() { return data_; }
  [[nodiscard]] T* end() { return data_ + size_; }
  [[nodiscard]] const T* begin() const { return data_; }
  [[nodiscard]] const T* end() const { return data_ + size_; }

 private:
  void release() {
    if (data_ != nullptr) {
#if SKEWLESS_FIRST_TOUCH_MMAP
      ::munmap(data_, bytes_);
#else
      std::free(data_);
#endif
    }
    data_ = nullptr;
    size_ = 0;
    bytes_ = 0;
  }

  T* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t bytes_ = 0;
};

}  // namespace skewless
