#include "common/histogram.h"

#include <algorithm>
#include <cmath>

namespace skewless {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  SKW_EXPECTS(bins > 0);
  SKW_EXPECTS(hi > lo);
}

std::size_t Histogram::bin_of(double value) const {
  if (value < lo_) return 0;
  const auto bin = static_cast<std::size_t>((value - lo_) / width_);
  return std::min(bin, counts_.size() - 1);
}

double Histogram::bin_lo(std::size_t bin) const {
  return lo_ + static_cast<double>(bin) * width_;
}

void Histogram::add(double value, std::uint64_t weight) {
  counts_[bin_of(value)] += weight;
  total_ += weight;
  sum_ += value * static_cast<double>(weight);
}

double Histogram::quantile(double q) const {
  SKW_EXPECTS(q >= 0.0 && q <= 1.0);
  if (total_ == 0) return 0.0;
  const double target = q * static_cast<double>(total_);
  double cum = 0.0;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const auto c = static_cast<double>(counts_[b]);
    if (cum + c >= target && c > 0.0) {
      const double frac = std::clamp((target - cum) / c, 0.0, 1.0);
      return bin_lo(b) + frac * width_;
    }
    cum += c;
  }
  return bin_lo(counts_.size() - 1) + width_;
}

void Histogram::merge(const Histogram& other) {
  SKW_EXPECTS(counts_.size() == other.counts_.size());
  SKW_EXPECTS(lo_ == other.lo_ && width_ == other.width_);
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    counts_[b] += other.counts_[b];
  }
  total_ += other.total_;
  sum_ += other.sum_;
}

void Histogram::clear() {
  std::fill(counts_.begin(), counts_.end(), 0);
  total_ = 0;
  sum_ = 0.0;
}

}  // namespace skewless
