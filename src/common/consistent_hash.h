// Consistent-hash ring (Karger et al., STOC'97) — the paper's default
// placement function h : K -> D (Section II, "we use the consistent
// hashing [14] as our basic hash function").
//
// Instances are placed on a 64-bit ring at `virtual_nodes` pseudo-random
// positions each; a key maps to the owner of the first ring position at or
// after its hash. Adding/removing an instance therefore moves only ~1/N of
// the keys — exactly the property the scale-out experiment (Fig. 15)
// relies on.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace skewless {

class ConsistentHashRing {
 public:
  /// Builds a ring over instances [0, num_instances) with the given number
  /// of virtual nodes per instance. `seed` derives the ring positions so
  /// that independent rings can be constructed for tests.
  explicit ConsistentHashRing(InstanceId num_instances,
                              int virtual_nodes = 128,
                              std::uint64_t seed = 0x5eed);

  /// Maps a key to its owning instance. O(log(N * virtual_nodes)).
  [[nodiscard]] InstanceId owner(KeyId key) const;

  /// Batched owner(): hashes every key in one vectorized pass
  /// (SketchKernels::hash64_batch) before the per-key ring searches, so
  /// the router's expand loop amortizes the hash latency across a chunk.
  /// out[i] == owner(keys[i]) exactly.
  void owner_batch(const KeyId* keys, std::size_t n, InstanceId* out) const;

  /// Adds one instance (id = current num_instances()). O(V log(NV)).
  void add_instance();

  /// Removes the instance with the highest id. Keys it owned redistribute
  /// to their ring successors.
  void remove_last_instance();

  [[nodiscard]] InstanceId num_instances() const { return num_instances_; }
  [[nodiscard]] int virtual_nodes() const { return virtual_nodes_; }

 private:
  struct RingPoint {
    std::uint64_t position;
    InstanceId instance;
    friend bool operator<(const RingPoint& a, const RingPoint& b) {
      return a.position < b.position ||
             (a.position == b.position && a.instance < b.instance);
    }
  };

  void insert_instance_points(InstanceId id);

  std::vector<RingPoint> ring_;  // sorted by position
  InstanceId num_instances_;
  int virtual_nodes_;
  std::uint64_t seed_;
};

}  // namespace skewless
