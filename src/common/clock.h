// Time sources. The simulation engine advances a VirtualClock; the
// threaded engine and the plan-generation timing use WallTimer.
#pragma once

#include <chrono>

#include "common/assert.h"
#include "common/types.h"

namespace skewless {

/// Monotonically advancing virtual clock (microseconds). The simulation
/// driver owns one and advances it explicitly; everything downstream reads
/// it, which is what makes simulated runs bit-for-bit reproducible.
class VirtualClock {
 public:
  [[nodiscard]] Micros now() const { return now_; }

  void advance(Micros delta) {
    SKW_EXPECTS(delta >= 0);
    now_ += delta;
  }

  void advance_to(Micros t) {
    SKW_EXPECTS(t >= now_);
    now_ = t;
  }

 private:
  Micros now_ = 0;
};

/// Wall-clock stopwatch for measuring plan-generation time (the paper's
/// "average generation time" metric) and threaded-engine intervals.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}

  void reset() { start_ = std::chrono::steady_clock::now(); }

  [[nodiscard]] Micros elapsed_micros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

  [[nodiscard]] double elapsed_millis() const {
    return static_cast<double>(elapsed_micros()) / 1000.0;
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace skewless
