// Deterministic, fast pseudo-random number generation.
//
// We avoid std::mt19937 for the hot workload-generation paths: xoshiro256**
// is ~4x faster and has a tiny state that copies cheaply into per-thread
// generators. SplitMix64 is used for seeding and as an integer mixer.
#pragma once

#include <cstdint>

#include "common/assert.h"

namespace skewless {

/// SplitMix64 — Steele, Lea & Flood's 64-bit mixer. Passes BigCrush when
/// used as a stream; primarily used here to expand a single seed into the
/// 256-bit xoshiro state and to hash integers.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Stateless mix of a 64-bit value (SplitMix64 finalizer). Good avalanche;
/// used as the default key-hashing primitive.
constexpr std::uint64_t mix64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** 1.0 — Blackman & Vigna. All-purpose generator for the
/// workload generators and randomized tests.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& w : s_) w = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound). Lemire's multiply-shift rejection-free
  /// variant (slight modulo bias below 2^-32, irrelevant for our bounds).
  std::uint64_t next_below(std::uint64_t bound) {
    SKW_EXPECTS(bound > 0);
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_between(std::int64_t lo, std::int64_t hi) {
    SKW_EXPECTS(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

}  // namespace skewless
