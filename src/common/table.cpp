#include "common/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/assert.h"

namespace skewless {

std::string fmt(double value, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << value;
  return os.str();
}

ResultTable::ResultTable(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {
  SKW_EXPECTS(!columns_.empty());
}

void ResultTable::add_row(std::vector<std::string> cells) {
  SKW_EXPECTS(cells.size() == columns_.size());
  rows_.push_back(std::move(cells));
}

void ResultTable::add_row_numeric(const std::vector<double>& cells,
                                  int precision) {
  std::vector<std::string> row;
  row.reserve(cells.size());
  for (double c : cells) row.push_back(fmt(c, precision));
  add_row(std::move(row));
}

void ResultTable::print() const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
  }
  std::printf("\n== %s ==\n", title_.c_str());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    std::printf("%-*s  ", static_cast<int>(widths[c]), columns_[c].c_str());
  }
  std::printf("\n");
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    std::printf("%s  ", std::string(widths[c], '-').c_str());
  }
  std::printf("\n");
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      std::printf("%-*s  ", static_cast<int>(widths[c]), row[c].c_str());
    }
    std::printf("\n");
  }
  std::printf("# CSV\n%s", to_csv().c_str());
  std::fflush(stdout);
}

std::string ResultTable::to_csv() const {
  std::ostringstream os;
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    os << columns_[c] << (c + 1 < columns_.size() ? "," : "\n");
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c] << (c + 1 < row.size() ? "," : "\n");
    }
  }
  return os.str();
}

}  // namespace skewless
