#include "common/cpu_topology.h"

#include <algorithm>
#include <cstdio>
#include <set>
#include <thread>
#include <utility>

#if defined(SKEWLESS_HAVE_NUMA)
#include <numa.h>
#endif

namespace skewless {
namespace {

/// Reads a small integer sysfs attribute; returns -1 on any failure.
int read_sysfs_int(const char* path) {
  std::FILE* f = std::fopen(path, "r");
  if (f == nullptr) return -1;
  int value = -1;
  const int got = std::fscanf(f, "%d", &value);
  std::fclose(f);
  return got == 1 ? value : -1;
}

CpuTopology probe_topology() {
  CpuTopology topo;
  topo.hardware_threads =
      std::max(1u, std::thread::hardware_concurrency());

  // (package, core) → first logical CPU claims the physical core; the
  // rest are SMT siblings.
  std::set<std::pair<int, int>> seen_cores;
  std::vector<int> primaries;
  std::vector<int> siblings;
  bool parsed_any = false;
  for (unsigned cpu = 0; cpu < topo.hardware_threads; ++cpu) {
    char path[128];
    std::snprintf(path, sizeof(path),
                  "/sys/devices/system/cpu/cpu%u/topology/core_id", cpu);
    const int core = read_sysfs_int(path);
    std::snprintf(
        path, sizeof(path),
        "/sys/devices/system/cpu/cpu%u/topology/physical_package_id", cpu);
    const int pkg = read_sysfs_int(path);
    if (core < 0 || pkg < 0) {
      parsed_any = false;
      break;
    }
    parsed_any = true;
    if (seen_cores.insert({pkg, core}).second) {
      primaries.push_back(static_cast<int>(cpu));
    } else {
      siblings.push_back(static_cast<int>(cpu));
    }
  }

  if (parsed_any && !primaries.empty()) {
    topo.physical_cores = static_cast<unsigned>(primaries.size());
    topo.pin_order = std::move(primaries);
    topo.pin_order.insert(topo.pin_order.end(), siblings.begin(),
                          siblings.end());
  } else {
    // sysfs unavailable (non-Linux, sandbox): identity order — same
    // behavior --pin had before topology awareness.
    topo.physical_cores = topo.hardware_threads;
    topo.pin_order.resize(topo.hardware_threads);
    for (unsigned i = 0; i < topo.hardware_threads; ++i) {
      topo.pin_order[i] = static_cast<int>(i);
    }
  }
  topo.smt = topo.hardware_threads > topo.physical_cores;
  return topo;
}

}  // namespace

const CpuTopology& cpu_topology() {
  static const CpuTopology topo = probe_topology();
  return topo;
}

bool bind_current_thread_to_node_of_cpu(int cpu) {
#if defined(SKEWLESS_HAVE_NUMA)
  if (numa_available() < 0 || cpu < 0) return false;
  if (numa_max_node() <= 0) return false;  // single node: nothing to place
  const int node = numa_node_of_cpu(cpu);
  if (node < 0) return false;
  // Prefer allocations from `node` for this thread; keeps the merge
  // thread's window memory near the driver without hard-failing when
  // the node fills up.
  numa_set_preferred(node);
  return true;
#else
  (void)cpu;
  return false;
#endif
}

bool numa_support_compiled() {
#if defined(SKEWLESS_HAVE_NUMA)
  return true;
#else
  return false;
#endif
}

}  // namespace skewless
