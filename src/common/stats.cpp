#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"

namespace skewless {

void Welford::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Welford::variance() const {
  return n_ >= 2 ? m2_ / static_cast<double>(n_) : 0.0;
}

double Welford::stddev() const { return std::sqrt(variance()); }

void Welford::merge(const Welford& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double nt = na + nb;
  m2_ += other.m2_ + delta * delta * na * nb / nt;
  mean_ += delta * nb / nt;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double percentile_sorted(const std::vector<double>& sorted, double q) {
  SKW_EXPECTS(!sorted.empty());
  SKW_EXPECTS(q >= 0.0 && q <= 1.0);
  if (sorted.size() == 1) return sorted.front();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

double percentile(std::vector<double> values, double q) {
  std::sort(values.begin(), values.end());
  return percentile_sorted(values, q);
}

std::vector<std::pair<double, double>> cdf_points(std::vector<double> values,
                                                  int points) {
  SKW_EXPECTS(points >= 2);
  std::sort(values.begin(), values.end());
  std::vector<std::pair<double, double>> out;
  out.reserve(static_cast<std::size_t>(points));
  for (int i = 0; i < points; ++i) {
    const double q = static_cast<double>(i) / (points - 1);
    out.emplace_back(q, percentile_sorted(values, q));
  }
  return out;
}

}  // namespace skewless
