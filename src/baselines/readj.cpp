#include "baselines/readj.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"
#include "common/clock.h"
#include "core/working_assignment.h"

namespace skewless {
namespace {

double max_load(const std::vector<Cost>& loads) {
  double m = 0.0;
  for (const Cost l : loads) m = std::max(m, l);
  return m;
}

InstanceId argmax_load(const std::vector<Cost>& loads) {
  std::size_t best = 0;
  for (std::size_t d = 1; d < loads.size(); ++d) {
    if (loads[d] > loads[best]) best = d;
  }
  return static_cast<InstanceId>(best);
}

struct BestAction {
  enum class Kind { kNone, kMove, kSwap } kind = Kind::kNone;
  KeyId key_a = 0;       // key leaving the hottest instance
  KeyId key_b = 0;       // swap partner (kSwap only)
  InstanceId target = 0; // destination instance
  double objective = 0.0;
};

/// One σ attempt. Returns the resulting dense assignment.
std::vector<InstanceId> readj_attempt(const PartitionSnapshot& snap,
                                      const PlannerConfig& config,
                                      double sigma,
                                      std::size_t max_iterations) {
  WorkingAssignment wa(snap);
  const Cost total =
      snap.average_load() * static_cast<Cost>(snap.num_instances);
  // Heavy-hitter semantics: a key participates iff it carries at least a
  // sigma fraction of the TOTAL workload. Small sigma tracks thousands of
  // candidate keys, which is what makes Readj's exhaustive pairing slow.
  const Cost heavy_threshold = sigma * total;
  const Cost lmax = snap.overload_threshold(config.theta_max);

  // Move back every routed entry that is not heavy — Readj's bias toward
  // restoring the hash function's placement. (Cold keys are untouchable;
  // their mass rides along in the WorkingAssignment loads.)
  for (std::size_t k = 0; k < snap.num_entries(); ++k) {
    if (snap.current[k] != snap.hash_dest[k] &&
        snap.cost[k] < heavy_threshold) {
      wa.move_back(static_cast<KeyId>(k));
    }
  }

  // Heavy candidates per instance are recomputed from the buckets each
  // iteration; the full enumeration per step is the point (it is what
  // makes Readj slow on fluctuating workloads).
  for (std::size_t iter = 0; iter < max_iterations; ++iter) {
    const auto& loads = wa.loads();
    if (max_load(loads) <= lmax) break;
    const InstanceId hot = argmax_load(loads);

    std::vector<KeyId> heavy_hot;
    for (const KeyId k : wa.keys_of(hot)) {
      if (snap.cost[static_cast<std::size_t>(k)] >= heavy_threshold) {
        heavy_hot.push_back(k);
      }
    }
    if (heavy_hot.empty()) break;  // nothing movable — Readj gives up

    BestAction best;
    best.objective = max_load(loads);
    for (const KeyId ka : heavy_hot) {
      const Cost ca = snap.cost[static_cast<std::size_t>(ka)];
      for (InstanceId d2 = 0; d2 < wa.num_instances(); ++d2) {
        if (d2 == hot) continue;
        const auto di = static_cast<std::size_t>(d2);
        // Plain move ka -> d2.
        {
          const double after =
              std::max(loads[static_cast<std::size_t>(hot)] - ca,
                       loads[di] + ca);
          double rest = 0.0;
          for (std::size_t d = 0; d < loads.size(); ++d) {
            if (d != static_cast<std::size_t>(hot) && d != di) {
              rest = std::max(rest, loads[d]);
            }
          }
          const double objective = std::max(after, rest);
          if (objective + 1e-12 < best.objective) {
            best = BestAction{BestAction::Kind::kMove, ka, 0, d2, objective};
          }
        }
        // Swaps ka <-> kb for every heavy kb on d2 with smaller cost.
        for (const KeyId kb : wa.keys_of(d2)) {
          const Cost cb = snap.cost[static_cast<std::size_t>(kb)];
          if (cb < heavy_threshold || cb >= ca) continue;
          const double after =
              std::max(loads[static_cast<std::size_t>(hot)] - ca + cb,
                       loads[di] + ca - cb);
          double rest = 0.0;
          for (std::size_t d = 0; d < loads.size(); ++d) {
            if (d != static_cast<std::size_t>(hot) && d != di) {
              rest = std::max(rest, loads[d]);
            }
          }
          const double objective = std::max(after, rest);
          if (objective + 1e-12 < best.objective) {
            best = BestAction{BestAction::Kind::kSwap, ka, kb, d2, objective};
          }
        }
      }
    }

    if (best.kind == BestAction::Kind::kNone) break;  // no improving action
    wa.disassociate(best.key_a);
    if (best.kind == BestAction::Kind::kSwap) {
      wa.disassociate(best.key_b);
      wa.assign(best.key_b, hot);
    }
    wa.assign(best.key_a, best.target);
  }
  return wa.to_assignment();
}

}  // namespace

RebalancePlan ReadjPlanner::plan(const PartitionSnapshot& snap,
                                 const PlannerConfig& config) {
  WallTimer timer;
  SKW_EXPECTS(!options_.sigma_grid.empty());

  bool have_best = false;
  RebalancePlan best;
  for (const double sigma : options_.sigma_grid) {
    auto assignment =
        readj_attempt(snap, config, sigma, options_.max_iterations);
    RebalancePlan trial = finalize_plan(snap, std::move(assignment), config);
    bool better = false;
    if (!have_best) {
      better = true;
    } else if (trial.balanced != best.balanced) {
      better = trial.balanced;
    } else if (trial.balanced) {
      better = trial.migration_bytes < best.migration_bytes;
    } else {
      better = trial.achieved_theta < best.achieved_theta;
    }
    if (better) {
      best = std::move(trial);
      have_best = true;
    }
    if (best.balanced && best.migration_bytes == 0.0) break;
  }
  SKW_ENSURES(have_best);
  best.generation_micros = timer.elapsed_micros();
  return best;
}

}  // namespace skewless
