// DKG — Distribution-aware Key Grouping (Rivetti et al., DEBS'15,
// reference [23] of the paper): "distinguishes heavy keys from light ones
// by granularities and applies greedy algorithms for load balance".
//
// Our rendering as a Planner: keys whose cost exceeds a threshold
// (a fraction of the average instance load) are "heavy" and placed
// individually, largest first, onto the least-loaded instance (greedy
// multiprocessor scheduling); light keys stay wherever the hash function
// put them. DKG plans from scratch each time — it has no notion of
// migration cost or routing-table bounds, which is exactly the contrast
// the paper draws with its own Mixed algorithm.
#pragma once

#include "core/plan.h"

namespace skewless {

class DkgPlanner final : public Planner {
 public:
  struct Options {
    /// A key is heavy iff c(k) ≥ heavy_fraction · L̄ (average instance
    /// load). DEBS'15 uses sketch-estimated frequencies; with exact
    /// statistics the threshold is the only tunable left.
    double heavy_fraction = 0.01;
  };

  DkgPlanner() = default;
  explicit DkgPlanner(Options options) : options_(options) {}

  [[nodiscard]] RebalancePlan plan(const PartitionSnapshot& snap,
                                   const PlannerConfig& config) override;
  [[nodiscard]] std::string name() const override { return "DKG"; }

 private:
  Options options_;
};

}  // namespace skewless
