// Per-tuple routing policies used by the engine's upstream tasks.
//
//  * HashRouter    — the plain "Storm" baseline: consistent hashing only,
//                    no rebalance ever.
//  * ShuffleRouter — the paper's "Ideal" upper bound: round-robin,
//                    ignoring keys entirely (unusable for stateful ops,
//                    but it bounds achievable throughput/latency).
//  * PkgRouter     — Partial Key Grouping (Nasir et al., ICDE'15): each
//                    key has two candidate destinations (two independent
//                    hashes); each tuple goes to the currently
//                    lesser-loaded of the two. Splits keys, so stateful
//                    aggregations need a downstream merge step — the
//                    engine models that extra stage's latency.
//
// The Controller-driven strategies (Mixed & friends, Readj) route through
// the live AssignmentFunction instead; see core/controller.h.
#pragma once

#include <cstdint>
#include <vector>

#include "common/assert.h"
#include "common/consistent_hash.h"
#include "common/hash.h"
#include "common/types.h"

namespace skewless {

class HashRouter {
 public:
  explicit HashRouter(ConsistentHashRing ring) : ring_(std::move(ring)) {}

  [[nodiscard]] InstanceId route(KeyId key) const { return ring_.owner(key); }
  [[nodiscard]] InstanceId num_instances() const {
    return ring_.num_instances();
  }
  void add_instance() { ring_.add_instance(); }

 private:
  ConsistentHashRing ring_;
};

class ShuffleRouter {
 public:
  explicit ShuffleRouter(InstanceId num_instances)
      : num_instances_(num_instances) {
    SKW_EXPECTS(num_instances > 0);
  }

  [[nodiscard]] InstanceId route(KeyId /*key*/) {
    const InstanceId d = next_;
    next_ = static_cast<InstanceId>((next_ + 1) % num_instances_);
    return d;
  }
  [[nodiscard]] InstanceId num_instances() const { return num_instances_; }
  void add_instance() { ++num_instances_; }

 private:
  InstanceId num_instances_;
  InstanceId next_ = 0;
};

class PkgRouter {
 public:
  explicit PkgRouter(InstanceId num_instances, std::uint64_t seed = 0x9c9)
      : num_instances_(num_instances),
        seed_(seed),
        load_(static_cast<std::size_t>(num_instances), 0.0) {
    SKW_EXPECTS(num_instances > 0);
  }

  /// Routes one tuple: the lesser-loaded of the key's two candidates.
  /// `cost_estimate` is the tuple's expected processing cost (1.0 when
  /// unknown — PKG balances on tuple counts).
  [[nodiscard]] InstanceId route(KeyId key, Cost cost_estimate = 1.0) {
    const auto c1 = candidate(key, 0);
    const auto c2 = candidate(key, 1);
    const InstanceId pick =
        load_[static_cast<std::size_t>(c1)] <= load_[static_cast<std::size_t>(c2)]
            ? c1
            : c2;
    load_[static_cast<std::size_t>(pick)] += cost_estimate;
    return pick;
  }

  /// Both candidate destinations for a key (needed by the merge stage and
  /// by join-style broadcasts, which PKG cannot avoid).
  [[nodiscard]] InstanceId candidate(KeyId key, int which) const {
    return static_cast<InstanceId>(
        hash64(key, seed_ + static_cast<std::uint64_t>(which) * 0x51edULL) %
        static_cast<std::uint64_t>(num_instances_));
  }

  /// Interval boundary: decay the load estimates so routing follows the
  /// current distribution, not all history.
  void on_interval() {
    for (auto& l : load_) l *= 0.5;
  }

  [[nodiscard]] InstanceId num_instances() const { return num_instances_; }
  [[nodiscard]] const std::vector<Cost>& loads() const { return load_; }

  void add_instance() {
    ++num_instances_;
    load_.push_back(0.0);
  }

 private:
  InstanceId num_instances_;
  std::uint64_t seed_;
  std::vector<Cost> load_;
};

}  // namespace skewless
