// Readj — our implementation of the closest related work (Gedik,
// "Partitioning functions for stateful data parallelism in stream
// processing", VLDBJ 23(4), 2014), as characterized in Section V of the
// reproduced paper:
//
//   * only keys with "relatively larger workload" participate: a key is a
//     candidate iff c(k) ≥ σ · (total workload) — heavy-hitter tracking;
//     smaller σ tracks more candidates and finds better plans, slower,
//   * the algorithm first tries to move keys back to their hash
//     destinations, then repeatedly enumerates ALL candidate moves and
//     pairwise swaps between instances, applying the single best one,
//     until balance is reached or no move improves imbalance — this
//     exhaustive pairing is what makes its plan generation slow,
//   * following the evaluation protocol, ReadjPlanner runs a small
//     σ-search (geometric grid) and reports the best plan found; the
//     measured generation time covers the whole search.
#pragma once

#include <vector>

#include "core/plan.h"

namespace skewless {

class ReadjPlanner final : public Planner {
 public:
  struct Options {
    /// σ grid searched per plan() call, highest (cheapest) first. σ is the
    /// fraction of the TOTAL workload above which a key counts as heavy.
    std::vector<double> sigma_grid = {0.01, 0.003, 0.001, 0.0003, 0.0001};
    /// Cap on best-move iterations per σ (each iteration is an O(H·N_D·H)
    /// enumeration over H candidate keys).
    std::size_t max_iterations = 512;
  };

  ReadjPlanner() = default;
  explicit ReadjPlanner(Options options) : options_(std::move(options)) {}

  [[nodiscard]] RebalancePlan plan(const PartitionSnapshot& snap,
                                   const PlannerConfig& config) override;
  [[nodiscard]] std::string name() const override { return "Readj"; }

 private:
  Options options_;
};

}  // namespace skewless
