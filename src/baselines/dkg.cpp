#include "baselines/dkg.h"

#include <algorithm>

#include "common/clock.h"
#include "core/working_assignment.h"

namespace skewless {

RebalancePlan DkgPlanner::plan(const PartitionSnapshot& snap,
                               const PlannerConfig& config) {
  WallTimer timer;
  const Cost avg = snap.average_load();
  const Cost threshold = options_.heavy_fraction * avg;

  // Light entries at their hash destination; heavy entries collected.
  // Cold residual mass stays pinned to its current instance (untracked
  // keys are not DKG's to move) and pre-loads the LPT targets.
  std::vector<InstanceId> assignment = snap.hash_dest;
  std::vector<Cost> loads(static_cast<std::size_t>(snap.num_instances), 0.0);
  snap.seed_cold_loads(loads);
  std::vector<KeyId> heavy;
  for (std::size_t k = 0; k < snap.num_entries(); ++k) {
    if (snap.cost[k] >= threshold && snap.cost[k] > 0.0) {
      heavy.push_back(static_cast<KeyId>(k));
    } else {
      loads[static_cast<std::size_t>(snap.hash_dest[k])] += snap.cost[k];
    }
  }

  // Greedy LPT: heaviest first onto the least-loaded instance.
  std::sort(heavy.begin(), heavy.end(), [&](KeyId a, KeyId b) {
    const Cost ca = snap.cost[static_cast<std::size_t>(a)];
    const Cost cb = snap.cost[static_cast<std::size_t>(b)];
    if (ca != cb) return ca > cb;
    return a < b;
  });
  for (const KeyId k : heavy) {
    std::size_t best = 0;
    for (std::size_t d = 1; d < loads.size(); ++d) {
      if (loads[d] < loads[best]) best = d;
    }
    assignment[static_cast<std::size_t>(k)] = static_cast<InstanceId>(best);
    loads[best] += snap.cost[static_cast<std::size_t>(k)];
  }

  auto result = finalize_plan(snap, std::move(assignment), config);
  result.generation_micros = timer.elapsed_micros();
  return result;
}

}  // namespace skewless
