#include "workload/social.h"

#include <numeric>

#include "common/assert.h"

namespace skewless {

SocialSource::SocialSource(Options options)
    : options_(options), rng_(options.seed) {
  SKW_EXPECTS(options.num_words > 0);
  SKW_EXPECTS(options.drift_fraction >= 0.0 &&
              options.drift_fraction <= 1.0);
  const ZipfDistribution zipf(options.num_words, options.skew,
                              /*permute_ranks=*/false);
  const auto by_key = zipf.expected_counts(options.tuples_per_interval);
  // With permute_ranks=false, key k holds rank k, so by_key is already the
  // per-rank count vector.
  rank_counts_ = by_key;
  rank_to_key_.resize(static_cast<std::size_t>(options.num_words));
  std::iota(rank_to_key_.begin(), rank_to_key_.end(), KeyId{0});
  // Start from a random topic ordering.
  for (std::size_t i = rank_to_key_.size() - 1; i > 0; --i) {
    std::swap(rank_to_key_[i],
              rank_to_key_[static_cast<std::size_t>(rng_.next_below(i + 1))]);
  }
}

IntervalWorkload SocialSource::next_interval() {
  IntervalWorkload load;
  load.counts.assign(rank_to_key_.size(), 0);
  for (std::size_t rank = 0; rank < rank_to_key_.size(); ++rank) {
    load.counts[static_cast<std::size_t>(rank_to_key_[rank])] =
        rank_counts_[rank];
  }

  // Slow drift: a few adjacent-rank swaps move topics gradually up/down
  // the popularity ladder.
  const auto swaps = static_cast<std::uint64_t>(
      options_.drift_fraction * static_cast<double>(rank_to_key_.size()));
  for (std::uint64_t s = 0; s < swaps; ++s) {
    const auto rank = static_cast<std::size_t>(
        rng_.next_below(rank_to_key_.size() - 1));
    std::swap(rank_to_key_[rank], rank_to_key_[rank + 1]);
  }
  return load;
}

}  // namespace skewless
