#include "workload/stock.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"

namespace skewless {

StockSource::StockSource(Options options)
    : options_(options), rng_(options.seed) {
  SKW_EXPECTS(options.num_symbols > 0);
  SKW_EXPECTS(options.burst_min_factor >= 1.0);
  SKW_EXPECTS(options.burst_max_factor >= options.burst_min_factor);
  SKW_EXPECTS(options.burst_min_intervals >= 1);
  SKW_EXPECTS(options.burst_max_intervals >= options.burst_min_intervals);
  const ZipfDistribution zipf(options.num_symbols, options.base_skew,
                              /*permute_ranks=*/true, options.seed);
  base_counts_ = zipf.expected_counts(options.tuples_per_interval);
}

IntervalWorkload StockSource::next_interval() {
  // Age out finished bursts.
  bursts_.erase(std::remove_if(bursts_.begin(), bursts_.end(),
                               [](const Burst& b) { return b.remaining <= 0; }),
                bursts_.end());

  // Possibly start a new burst on a random symbol.
  if (rng_.next_double() < options_.burst_probability) {
    Burst burst;
    burst.symbol = static_cast<KeyId>(rng_.next_below(options_.num_symbols));
    burst.factor =
        options_.burst_min_factor +
        rng_.next_double() *
            (options_.burst_max_factor - options_.burst_min_factor);
    burst.remaining = static_cast<int>(rng_.next_between(
        options_.burst_min_intervals, options_.burst_max_intervals));
    bursts_.push_back(burst);
  }

  IntervalWorkload load;
  load.counts = base_counts_;
  for (auto& burst : bursts_) {
    auto& count = load.counts[static_cast<std::size_t>(burst.symbol)];
    count = static_cast<std::uint64_t>(
        std::llround(static_cast<double>(count) * burst.factor));
    --burst.remaining;
  }
  return load;
}

}  // namespace skewless
