#include "workload/adversarial.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/assert.h"
#include "common/hash.h"
#include "sketch/count_min.h"
#include "sketch/sketch_stats_window.h"

namespace skewless {

namespace {

struct AttackNames {
  AttackKind kind;
  const char* name;
};

constexpr AttackNames kAttackNames[] = {
    {AttackKind::kRotatingHotSet, "rotating"},
    {AttackKind::kSkewFlip, "skew-flip"},
    {AttackKind::kParetoTail, "pareto"},
    {AttackKind::kKeyChurnFlood, "churn"},
    {AttackKind::kHashCollision, "collision"},
};

/// counts scaled by `keep` (floor — the emitted interval never exceeds
/// the nominal budget).
std::vector<std::uint64_t> scale_counts(const std::vector<std::uint64_t>& in,
                                        double keep) {
  std::vector<std::uint64_t> out(in.size());
  for (std::size_t k = 0; k < in.size(); ++k) {
    out[k] = static_cast<std::uint64_t>(static_cast<double>(in[k]) * keep);
  }
  return out;
}

/// Spreads `budget` tuples uniformly over `n` slots: base everywhere,
/// the remainder on the first slots (deterministic).
std::uint64_t uniform_share(std::uint64_t budget, std::uint64_t n,
                            std::uint64_t slot) {
  const std::uint64_t base = budget / n;
  return base + (slot < budget % n ? 1 : 0);
}

}  // namespace

std::optional<AttackKind> parse_attack(std::string_view name) {
  for (const auto& a : kAttackNames) {
    if (name == a.name) return a.kind;
  }
  return std::nullopt;
}

const char* attack_name(AttackKind kind) {
  for (const auto& a : kAttackNames) {
    if (a.kind == kind) return a.name;
  }
  return "?";
}

const std::vector<AttackKind>& all_attacks() {
  static const std::vector<AttackKind> kAll = {
      AttackKind::kRotatingHotSet, AttackKind::kSkewFlip,
      AttackKind::kParetoTail, AttackKind::kKeyChurnFlood,
      AttackKind::kHashCollision};
  return kAll;
}

AdversarialSource::AdversarialSource(Options options)
    : options_(options),
      background_(options.num_keys, options.background_skew,
                  /*permute_ranks=*/true, options.seed),
      // Same permutation seed as the background: the flip phases share
      // one ranking, so flipping moves mass between head and tail
      // without reshuffling which keys are which.
      flip_high_(options.num_keys, options.skew_high, /*permute_ranks=*/true,
                 options.seed) {
  SKW_EXPECTS(options.num_keys > 0);
  SKW_EXPECTS(options.tuples_per_interval > 0);
  SKW_EXPECTS(options.hot_mass >= 0.0 && options.hot_mass < 1.0);
  SKW_EXPECTS(options.churn_mass >= 0.0 && options.churn_mass < 1.0);
  SKW_EXPECTS(options.collision_mass >= 0.0 && options.collision_mass < 1.0);
  background_counts_ = background_.expected_counts(options.tuples_per_interval);
  switch (options_.attack) {
    case AttackKind::kRotatingHotSet:
      SKW_EXPECTS(options.rotation_period >= 1 && options.hot_groups >= 1);
      SKW_EXPECTS(options.hot_keys_per_group >= 1);
      SKW_EXPECTS(static_cast<std::uint64_t>(options.hot_groups) *
                      options.hot_keys_per_group <=
                  options.num_keys);
      // The rotation only punishes memory-less promotion if a rotated-out
      // group goes COMPLETELY idle: zero the background on the reserved
      // hot ranges (a sliver of the permuted Zipf tail) so idleness is
      // real, not diluted by residual tail mass.
      for (std::uint64_t k = 0; k < static_cast<std::uint64_t>(
                                        options.hot_groups) *
                                        options.hot_keys_per_group;
           ++k) {
        background_counts_[static_cast<std::size_t>(k)] = 0;
      }
      break;
    case AttackKind::kSkewFlip:
      SKW_EXPECTS(options.flip_period >= 1);
      flip_high_counts_ =
          flip_high_.expected_counts(options.tuples_per_interval);
      flip_low_counts_ = background_counts_;
      break;
    case AttackKind::kParetoTail: {
      SKW_EXPECTS(options.pareto_alpha > 0.0);
      // Deterministic Pareto(α) weights via per-key hashed uniforms,
      // turned into counts with cumulative rounding so they sum to
      // exactly tuples_per_interval.
      const std::size_t n = static_cast<std::size_t>(options.num_keys);
      std::vector<double> weight(n);
      double total = 0.0;
      for (std::size_t k = 0; k < n; ++k) {
        const double u =
            static_cast<double>(hash64(static_cast<KeyId>(k),
                                       options.seed ^ 0xabba5eedULL) >>
                                11) *
            0x1.0p-53;
        weight[k] = std::pow(1.0 - u, -1.0 / options.pareto_alpha);
        total += weight[k];
      }
      pareto_counts_.resize(n);
      const double budget =
          static_cast<double>(options.tuples_per_interval);
      double cum = 0.0;
      std::uint64_t emitted = 0;
      for (std::size_t k = 0; k < n; ++k) {
        cum += weight[k];
        const auto upto =
            static_cast<std::uint64_t>(std::floor(budget * cum / total));
        const std::uint64_t c = std::min(
            upto > emitted ? upto - emitted : 0, options.tuples_per_interval);
        pareto_counts_[k] = c;
        emitted += c;
      }
      if (emitted < options.tuples_per_interval) {
        pareto_counts_[n - 1] += options.tuples_per_interval - emitted;
      }
      break;
    }
    case AttackKind::kKeyChurnFlood:
      SKW_EXPECTS(options.churn_active >= 1 &&
                  options.churn_active <= options.num_keys);
      SKW_EXPECTS(options.churn_shift >= 1);
      break;
    case AttackKind::kHashCollision:
      find_collisions();
      break;
  }
}

void AdversarialSource::find_collisions() {
  // Two keys collide in EVERY row of a Kirsch–Mitzenmacher sketch of
  // width 2^b iff their (h1 mod 2^b, h2 mod 2^b) pairs match: row i
  // probes (h1 + i·h2) mod 2^b. Scan the domain bucketing keys by that
  // masked pair and take the fullest bucket. With the default ε the
  // width makes full-family collisions astronomically rare — the attack
  // is meant for coarse sketches (bench uses ε ≈ 2e-2 → width 256,
  // where a modest scan yields dozens of colliding keys); against a
  // fine sketch the scan degrades gracefully to whatever it finds.
  const CountMinSketch::Params params = SketchStatsWindow::family_params(
      options_.sketch, SketchStatsWindow::kSharedFamilySalt);
  const CountMinSketch probe_geometry(params);
  const std::uint64_t mask = probe_geometry.width() - 1;
  const std::uint64_t scan =
      std::min(options_.num_keys, options_.collision_scan);
  std::unordered_map<std::uint64_t, std::uint32_t> bucket_count;
  std::uint64_t best_bucket = 0;
  std::uint32_t best_size = 0;
  for (std::uint64_t k = 0; k < scan; ++k) {
    const auto probe = CountMinSketch::make_probe(k, params.seed);
    const std::uint64_t bucket = ((probe.h1 & mask) << 32) | (probe.h2 & mask);
    const std::uint32_t size = ++bucket_count[bucket];
    // Ties keep the first-seen bucket — deterministic.
    if (size > best_size) {
      best_size = size;
      best_bucket = bucket;
    }
  }
  colliding_.reserve(std::min<std::uint64_t>(best_size,
                                             options_.collision_keys));
  for (std::uint64_t k = 0;
       k < scan && colliding_.size() <
                       static_cast<std::size_t>(options_.collision_keys);
       ++k) {
    const auto probe = CountMinSketch::make_probe(k, params.seed);
    const std::uint64_t bucket = ((probe.h1 & mask) << 32) | (probe.h2 & mask);
    if (bucket == best_bucket) colliding_.push_back(static_cast<KeyId>(k));
  }
}

int AdversarialSource::rotating_group_at(std::int64_t interval) const {
  return static_cast<int>((interval / options_.rotation_period) %
                          options_.hot_groups);
}

IntervalWorkload AdversarialSource::counts_for(std::int64_t interval) const {
  SKW_EXPECTS(interval >= 0);
  IntervalWorkload load;
  const std::uint64_t budget = options_.tuples_per_interval;
  switch (options_.attack) {
    case AttackKind::kRotatingHotSet: {
      load.counts = scale_counts(background_counts_, 1.0 - options_.hot_mass);
      const auto hot_budget = static_cast<std::uint64_t>(
          static_cast<double>(budget) * options_.hot_mass);
      const auto group =
          static_cast<std::uint64_t>(rotating_group_at(interval));
      const std::uint64_t first = group * options_.hot_keys_per_group;
      for (std::uint64_t j = 0; j < options_.hot_keys_per_group; ++j) {
        load.counts[static_cast<std::size_t>(first + j)] +=
            uniform_share(hot_budget, options_.hot_keys_per_group, j);
      }
      break;
    }
    case AttackKind::kSkewFlip:
      load.counts = ((interval / options_.flip_period) % 2 == 0)
                        ? flip_high_counts_
                        : flip_low_counts_;
      break;
    case AttackKind::kParetoTail:
      load.counts = pareto_counts_;
      break;
    case AttackKind::kKeyChurnFlood: {
      load.counts =
          scale_counts(background_counts_, 1.0 - options_.churn_mass);
      const auto flood_budget = static_cast<std::uint64_t>(
          static_cast<double>(budget) * options_.churn_mass);
      const std::uint64_t start =
          (static_cast<std::uint64_t>(interval) * options_.churn_shift) %
          options_.num_keys;
      for (std::uint64_t j = 0; j < options_.churn_active; ++j) {
        const std::uint64_t key = (start + j) % options_.num_keys;
        load.counts[static_cast<std::size_t>(key)] +=
            uniform_share(flood_budget, options_.churn_active, j);
      }
      break;
    }
    case AttackKind::kHashCollision: {
      load.counts =
          scale_counts(background_counts_, 1.0 - options_.collision_mass);
      if (!colliding_.empty()) {
        const auto attack_budget = static_cast<std::uint64_t>(
            static_cast<double>(budget) * options_.collision_mass);
        const auto n = static_cast<std::uint64_t>(colliding_.size());
        for (std::uint64_t j = 0; j < n; ++j) {
          load.counts[static_cast<std::size_t>(colliding_[j])] +=
              uniform_share(attack_budget, n, j);
        }
      }
      break;
    }
  }
  return load;
}

IntervalWorkload AdversarialSource::next_interval() {
  return counts_for(next_++);
}

}  // namespace skewless
