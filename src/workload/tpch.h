// Mini-DBGen: a scaled-down TPC-H data generator with Zipf-skewed foreign
// keys (the paper generates 1 GB with DBGen and "produc[es] zipf skewness
// on foreign keys with z = 0.8"), plus the streaming Q5 workload used by
// the Fig. 16 experiment.
//
// Q5 ("local supplier volume") joins
//   region ⋈ nation ⋈ customer ⋈ orders ⋈ lineitem ⋈ supplier
// and aggregates revenue per nation. The paper revises it into a
// continuous query over a sliding window whose join operators run as
// separate keyed stages; the imbalance of an upstream join stalls the
// downstream ones. We materialize the same structure as a three-stage
// keyed pipeline:
//   stage 0: orders ⋈ customer,   keyed by custkey,
//   stage 1: lineitem ⋈ orders,   keyed by order bucket,
//   stage 2: ⋈ supplier/nation + per-nation aggregation, keyed by suppkey.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "engine/workload_source.h"

namespace skewless {
namespace tpch {

struct Region {
  std::int32_t key;
  std::string name;
};

struct Nation {
  std::int32_t key;
  std::int32_t region_key;
  std::string name;
};

struct Supplier {
  std::int32_t key;
  std::int32_t nation_key;
};

struct Customer {
  std::int32_t key;
  std::int32_t nation_key;
};

struct Order {
  std::int64_t key;
  std::int32_t cust_key;
  /// Seconds offset of the order within the simulated run.
  std::int64_t timestamp_sec;
};

struct LineItem {
  std::int64_t order_key;
  std::int32_t supp_key;
  double extended_price;
  double discount;
  std::int64_t timestamp_sec;
};

struct Scale {
  std::int32_t regions = 5;
  std::int32_t nations = 25;
  std::int32_t suppliers = 1'000;
  std::int32_t customers = 15'000;
  std::int64_t orders = 150'000;
  /// Mean lineitems per order (actual count is 1..2·mean−1 uniform).
  int lineitems_per_order = 4;
  /// Zipf skew applied to the custkey and suppkey foreign keys.
  double fk_skew = 0.8;
  /// Length of the simulated run the orders spread over.
  std::int64_t run_seconds = 3'600;
  /// A fresh foreign-key hotness permutation every epoch — the paper
  /// "trigger[s] the distribution change in every 15 minutes".
  std::int64_t epoch_seconds = 900;
  std::uint64_t seed = 42;
};

struct Tables {
  Scale scale;
  std::vector<Region> regions;
  std::vector<Nation> nations;
  std::vector<Supplier> suppliers;
  std::vector<Customer> customers;
  std::vector<Order> orders;
  std::vector<LineItem> lineitems;

  /// Generates all tables. Orders arrive uniformly over run_seconds; the
  /// custkey / suppkey Zipf rank permutations are re-drawn every epoch.
  static Tables generate(const Scale& scale);

  /// Referential-integrity check (every FK resolves); aborts on violation.
  void validate() const;

  /// Reference answer: Q5 revenue per nation over the whole dataset
  /// (customer and supplier in the same nation's region), computed by a
  /// naive in-memory join. Used to cross-check the streaming pipeline.
  [[nodiscard]] std::vector<double> q5_revenue_by_nation() const;
};

/// Per-interval tuple counts for the three Q5 pipeline stages, derived
/// from the generated tables.
class Q5Workload {
 public:
  /// `interval_seconds` discretizes the run into intervals; `order_buckets`
  /// is the key-domain size of the orderkey join stage (orderkeys are
  /// hash-bucketed, as a hash-partitioned join would).
  Q5Workload(const Tables& tables, std::int64_t interval_seconds,
             std::size_t order_buckets = 20'000);

  [[nodiscard]] int num_intervals() const {
    return static_cast<int>(stage0_.size());
  }

  /// Replayable source for stage 0 / 1 / 2.
  [[nodiscard]] std::unique_ptr<WorkloadSource> stage_source(int stage) const;

  [[nodiscard]] std::size_t stage_num_keys(int stage) const;

 private:
  std::vector<std::vector<std::uint64_t>> stage0_;  // custkey counts
  std::vector<std::vector<std::uint64_t>> stage1_;  // order-bucket counts
  std::vector<std::vector<std::uint64_t>> stage2_;  // suppkey counts
};

}  // namespace tpch
}  // namespace skewless
