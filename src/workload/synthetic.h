// Synthetic workload generator (Section V, "Synthetic Data"): per-interval
// snapshots of tuple counts over an integer key domain, Zipf-distributed
// with skew z, with controlled distribution fluctuation across intervals.
//
// Fluctuation follows the paper's protocol: "at the beginning of a new
// interval, our generator keeps swapping frequencies between keys from
// different task instances until the change on workload is significant
// enough, i.e. |L_i(d) − L_{i−1}(d)| / L̄ ≥ f".
#pragma once

#include <cstdint>
#include <vector>

#include "common/consistent_hash.h"
#include "common/rng.h"
#include "common/zipf.h"
#include "engine/workload_source.h"

namespace skewless {

class ZipfFluctuatingSource final : public WorkloadSource {
 public:
  struct Options {
    std::uint64_t num_keys = 100'000;       // K
    double skew = 0.85;                     // z
    std::uint64_t tuples_per_interval = 100'000;
    double fluctuation = 1.0;               // f
    /// Apply the fluctuation only every this many intervals (the paper's
    /// testbed rebalances within ~1/10 of an interval, so its effective
    /// change cadence is several intervals; 1 = change every interval).
    int fluctuate_every = 1;
    /// Reference partitioning used to define "keys from different task
    /// instances" for frequency swaps.
    InstanceId reference_instances = 10;
    std::uint64_t seed = 7;
    /// If true, per-interval counts are Poisson-perturbed around the Zipf
    /// expectation (natural sampling noise); if false, exact expectations.
    bool sample_noise = false;
  };

  explicit ZipfFluctuatingSource(Options options);

  [[nodiscard]] std::size_t num_keys() const override {
    return static_cast<std::size_t>(options_.num_keys);
  }

  [[nodiscard]] IntervalWorkload next_interval() override;

  [[nodiscard]] const Options& options() const { return options_; }

 private:
  void apply_fluctuation();
  [[nodiscard]] std::vector<double> instance_loads() const;

  Options options_;
  ZipfDistribution zipf_;
  ConsistentHashRing reference_ring_;
  Xoshiro256 rng_;
  std::vector<std::uint64_t> counts_;        // current snapshot
  std::vector<InstanceId> reference_dest_;   // key -> reference instance
  std::int64_t intervals_emitted_ = 0;
};

/// Draws a Poisson(mean) sample (Knuth for small means, normal
/// approximation above 64). Exposed for tests.
[[nodiscard]] std::uint64_t poisson_sample(Xoshiro256& rng, double mean);

}  // namespace skewless
