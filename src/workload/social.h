// Social workload substitute (see DESIGN.md):
//
// The paper's Social dataset is 5 days of microblog feeds — 5M+ tuples
// over 180K topic-word keys — whose defining property is that "the word
// frequency usually changes slowly". We model it as a Zipf word
// distribution whose rank->word mapping drifts gradually: each interval a
// small fraction of adjacent ranks swap, so hot topics rise and fall over
// many intervals rather than jumping.
#pragma once

#include <cstdint>

#include "common/rng.h"
#include "common/zipf.h"
#include "engine/workload_source.h"

namespace skewless {

class SocialSource final : public WorkloadSource {
 public:
  struct Options {
    std::uint64_t num_words = 180'000;
    double skew = 0.9;
    std::uint64_t tuples_per_interval = 1'000'000;
    /// Fraction of ranks that drift (swap with a neighbour) per interval.
    double drift_fraction = 0.01;
    std::uint64_t seed = 11;
  };

  explicit SocialSource(Options options);

  [[nodiscard]] std::size_t num_keys() const override {
    return static_cast<std::size_t>(options_.num_words);
  }

  [[nodiscard]] IntervalWorkload next_interval() override;

  [[nodiscard]] const Options& options() const { return options_; }

 private:
  Options options_;
  Xoshiro256 rng_;
  std::vector<std::uint64_t> rank_counts_;  // count at each rank (fixed)
  std::vector<KeyId> rank_to_key_;          // drifting permutation
};

}  // namespace skewless
