#include "workload/tpch.h"

#include <algorithm>
#include <numeric>

#include "common/assert.h"
#include "common/hash.h"
#include "common/zipf.h"

namespace skewless {
namespace tpch {
namespace {

const char* kRegionNames[] = {"AFRICA", "AMERICA", "ASIA", "EUROPE",
                              "MIDDLE EAST"};

/// Replay source: hands out precomputed per-interval count vectors,
/// repeating the last interval if stepped past the end.
class ReplaySource final : public WorkloadSource {
 public:
  ReplaySource(const std::vector<std::vector<std::uint64_t>>* data,
               std::size_t num_keys)
      : data_(data), num_keys_(num_keys) {}

  [[nodiscard]] std::size_t num_keys() const override { return num_keys_; }

  [[nodiscard]] IntervalWorkload next_interval() override {
    IntervalWorkload load;
    const std::size_t i = std::min(cursor_, data_->size() - 1);
    load.counts = (*data_)[i];
    ++cursor_;
    return load;
  }

 private:
  const std::vector<std::vector<std::uint64_t>>* data_;
  std::size_t num_keys_;
  std::size_t cursor_ = 0;
};

}  // namespace

Tables Tables::generate(const Scale& scale) {
  SKW_EXPECTS(scale.regions > 0 && scale.nations >= scale.regions);
  SKW_EXPECTS(scale.customers > 0 && scale.suppliers > 0);
  SKW_EXPECTS(scale.orders > 0 && scale.lineitems_per_order >= 1);
  SKW_EXPECTS(scale.run_seconds > 0 && scale.epoch_seconds > 0);

  Tables t;
  t.scale = scale;
  Xoshiro256 rng(scale.seed);

  for (std::int32_t r = 0; r < scale.regions; ++r) {
    t.regions.push_back(Region{r, kRegionNames[r % 5]});
  }
  for (std::int32_t n = 0; n < scale.nations; ++n) {
    t.nations.push_back(
        Nation{n, static_cast<std::int32_t>(n % scale.regions),
               "NATION_" + std::to_string(n)});
  }
  for (std::int32_t s = 0; s < scale.suppliers; ++s) {
    t.suppliers.push_back(Supplier{
        s, static_cast<std::int32_t>(rng.next_below(
               static_cast<std::uint64_t>(scale.nations)))});
  }
  for (std::int32_t c = 0; c < scale.customers; ++c) {
    t.customers.push_back(Customer{
        c, static_cast<std::int32_t>(rng.next_below(
               static_cast<std::uint64_t>(scale.nations)))});
  }

  // Orders: custkey drawn Zipf(fk_skew); the rank permutation is re-drawn
  // per epoch, which shifts which customers are hot every 15 minutes.
  const auto num_epochs = static_cast<std::uint64_t>(
      (scale.run_seconds + scale.epoch_seconds - 1) / scale.epoch_seconds);
  std::vector<ZipfDistribution> cust_zipf;
  std::vector<ZipfDistribution> supp_zipf;
  cust_zipf.reserve(num_epochs);
  supp_zipf.reserve(num_epochs);
  for (std::uint64_t e = 0; e < num_epochs; ++e) {
    cust_zipf.emplace_back(static_cast<std::uint64_t>(scale.customers),
                           scale.fk_skew, true, scale.seed + 100 + e);
    supp_zipf.emplace_back(static_cast<std::uint64_t>(scale.suppliers),
                           scale.fk_skew, true, scale.seed + 500 + e);
  }

  t.orders.reserve(static_cast<std::size_t>(scale.orders));
  t.lineitems.reserve(static_cast<std::size_t>(scale.orders) *
                      static_cast<std::size_t>(scale.lineitems_per_order));
  for (std::int64_t o = 0; o < scale.orders; ++o) {
    const auto ts = static_cast<std::int64_t>(
        rng.next_below(static_cast<std::uint64_t>(scale.run_seconds)));
    const auto epoch = static_cast<std::size_t>(ts / scale.epoch_seconds);
    Order order;
    order.key = o;
    order.cust_key =
        static_cast<std::int32_t>(cust_zipf[epoch].sample(rng));
    order.timestamp_sec = ts;
    t.orders.push_back(order);

    const int items = static_cast<int>(rng.next_between(
        1, 2 * scale.lineitems_per_order - 1));
    for (int li = 0; li < items; ++li) {
      LineItem item;
      item.order_key = o;
      item.supp_key =
          static_cast<std::int32_t>(supp_zipf[epoch].sample(rng));
      item.extended_price = 100.0 + rng.next_double() * 99'900.0;
      item.discount = rng.next_double() * 0.10;
      item.timestamp_sec = ts;
      t.lineitems.push_back(item);
    }
  }
  return t;
}

void Tables::validate() const {
  for (const Nation& n : nations) {
    SKW_ENSURES(n.region_key >= 0 && n.region_key < scale.regions);
  }
  for (const Supplier& s : suppliers) {
    SKW_ENSURES(s.nation_key >= 0 && s.nation_key < scale.nations);
  }
  for (const Customer& c : customers) {
    SKW_ENSURES(c.nation_key >= 0 && c.nation_key < scale.nations);
  }
  for (const Order& o : orders) {
    SKW_ENSURES(o.cust_key >= 0 && o.cust_key < scale.customers);
    SKW_ENSURES(o.timestamp_sec >= 0 && o.timestamp_sec < scale.run_seconds);
  }
  for (const LineItem& li : lineitems) {
    SKW_ENSURES(li.order_key >= 0 &&
                li.order_key < static_cast<std::int64_t>(orders.size()));
    SKW_ENSURES(li.supp_key >= 0 && li.supp_key < scale.suppliers);
    SKW_ENSURES(li.discount >= 0.0 && li.discount <= 0.10);
  }
}

std::vector<double> Tables::q5_revenue_by_nation() const {
  std::vector<double> revenue(static_cast<std::size_t>(scale.nations), 0.0);
  for (const LineItem& li : lineitems) {
    const Order& order = orders[static_cast<std::size_t>(li.order_key)];
    const Customer& cust =
        customers[static_cast<std::size_t>(order.cust_key)];
    const Supplier& supp = suppliers[static_cast<std::size_t>(li.supp_key)];
    const Nation& cust_nation =
        nations[static_cast<std::size_t>(cust.nation_key)];
    const Nation& supp_nation =
        nations[static_cast<std::size_t>(supp.nation_key)];
    // Q5 predicate: customer and supplier from the same region; revenue is
    // attributed to the supplier nation.
    if (cust_nation.region_key != supp_nation.region_key) continue;
    revenue[static_cast<std::size_t>(supp.nation_key)] +=
        li.extended_price * (1.0 - li.discount);
  }
  return revenue;
}

Q5Workload::Q5Workload(const Tables& tables, std::int64_t interval_seconds,
                       std::size_t order_buckets) {
  SKW_EXPECTS(interval_seconds > 0);
  SKW_EXPECTS(order_buckets > 0);
  const auto intervals = static_cast<std::size_t>(
      (tables.scale.run_seconds + interval_seconds - 1) / interval_seconds);

  stage0_.assign(intervals, std::vector<std::uint64_t>(
                                static_cast<std::size_t>(
                                    tables.scale.customers),
                                0));
  stage1_.assign(intervals, std::vector<std::uint64_t>(order_buckets, 0));
  stage2_.assign(intervals, std::vector<std::uint64_t>(
                                static_cast<std::size_t>(
                                    tables.scale.suppliers),
                                0));

  for (const Order& o : tables.orders) {
    const auto i = static_cast<std::size_t>(o.timestamp_sec / interval_seconds);
    ++stage0_[i][static_cast<std::size_t>(o.cust_key)];
  }
  for (const LineItem& li : tables.lineitems) {
    const auto i =
        static_cast<std::size_t>(li.timestamp_sec / interval_seconds);
    const auto bucket = static_cast<std::size_t>(
        hash64(static_cast<std::uint64_t>(li.order_key), 0x9b) %
        order_buckets);
    ++stage1_[i][bucket];
    ++stage2_[i][static_cast<std::size_t>(li.supp_key)];
  }
}

std::size_t Q5Workload::stage_num_keys(int stage) const {
  switch (stage) {
    case 0:
      return stage0_.front().size();
    case 1:
      return stage1_.front().size();
    case 2:
      return stage2_.front().size();
    default:
      SKW_EXPECTS(false);
      return 0;
  }
}

std::unique_ptr<WorkloadSource> Q5Workload::stage_source(int stage) const {
  switch (stage) {
    case 0:
      return std::make_unique<ReplaySource>(&stage0_, stage0_.front().size());
    case 1:
      return std::make_unique<ReplaySource>(&stage1_, stage1_.front().size());
    case 2:
      return std::make_unique<ReplaySource>(&stage2_, stage2_.front().size());
    default:
      SKW_EXPECTS(false);
      return nullptr;
  }
}

}  // namespace tpch
}  // namespace skewless
