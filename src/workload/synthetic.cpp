#include "workload/synthetic.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"

namespace skewless {

std::uint64_t poisson_sample(Xoshiro256& rng, double mean) {
  SKW_EXPECTS(mean >= 0.0);
  if (mean == 0.0) return 0;
  if (mean < 64.0) {
    // Knuth's product-of-uniforms method.
    const double limit = std::exp(-mean);
    double product = rng.next_double();
    std::uint64_t n = 0;
    while (product > limit) {
      product *= rng.next_double();
      ++n;
    }
    return n;
  }
  // Normal approximation with continuity correction.
  const double u1 = std::max(rng.next_double(), 1e-12);
  const double u2 = rng.next_double();
  const double gauss =
      std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  const double value = mean + std::sqrt(mean) * gauss + 0.5;
  return value <= 0.0 ? 0 : static_cast<std::uint64_t>(value);
}

ZipfFluctuatingSource::ZipfFluctuatingSource(Options options)
    : options_(options),
      zipf_(options.num_keys, options.skew, /*permute_ranks=*/true,
            options.seed),
      reference_ring_(options.reference_instances, 128, options.seed ^ 0xabc),
      rng_(options.seed * 0x9e3779b97f4a7c15ULL + 1),
      counts_(zipf_.expected_counts(options.tuples_per_interval)) {
  SKW_EXPECTS(options.num_keys > 0);
  SKW_EXPECTS(options.fluctuation >= 0.0);
  reference_dest_.resize(static_cast<std::size_t>(options.num_keys));
  for (std::size_t k = 0; k < reference_dest_.size(); ++k) {
    reference_dest_[k] = reference_ring_.owner(static_cast<KeyId>(k));
  }
}

std::vector<double> ZipfFluctuatingSource::instance_loads() const {
  std::vector<double> loads(
      static_cast<std::size_t>(options_.reference_instances), 0.0);
  for (std::size_t k = 0; k < counts_.size(); ++k) {
    loads[static_cast<std::size_t>(reference_dest_[k])] +=
        static_cast<double>(counts_[k]);
  }
  return loads;
}

void ZipfFluctuatingSource::apply_fluctuation() {
  if (options_.fluctuation <= 0.0) return;
  const auto before = instance_loads();
  double avg = 0.0;
  for (const double l : before) avg += l;
  avg /= static_cast<double>(before.size());
  if (avg <= 0.0) return;

  auto after = before;
  const std::uint64_t k_domain = options_.num_keys;
  // Swap frequencies between keys on different reference instances until
  // some instance's load changed by at least f · L̄. Cap the number of
  // attempts so tiny domains terminate.
  const std::uint64_t max_swaps = 64 * k_domain + 1024;
  for (std::uint64_t attempt = 0; attempt < max_swaps; ++attempt) {
    double worst = 0.0;
    for (std::size_t d = 0; d < after.size(); ++d) {
      worst = std::max(worst, std::abs(after[d] - before[d]) / avg);
    }
    if (worst >= options_.fluctuation) return;

    const auto a = static_cast<std::size_t>(rng_.next_below(k_domain));
    const auto b = static_cast<std::size_t>(rng_.next_below(k_domain));
    const InstanceId da = reference_dest_[a];
    const InstanceId db = reference_dest_[b];
    if (da == db || counts_[a] == counts_[b]) continue;
    const auto delta =
        static_cast<double>(counts_[a]) - static_cast<double>(counts_[b]);
    std::swap(counts_[a], counts_[b]);
    after[static_cast<std::size_t>(da)] -= delta;
    after[static_cast<std::size_t>(db)] += delta;
  }
}

IntervalWorkload ZipfFluctuatingSource::next_interval() {
  SKW_EXPECTS(options_.fluctuate_every >= 1);
  if (intervals_emitted_ > 0 &&
      intervals_emitted_ % options_.fluctuate_every == 0) {
    apply_fluctuation();
  }
  ++intervals_emitted_;

  IntervalWorkload load;
  if (options_.sample_noise) {
    load.counts.resize(counts_.size());
    for (std::size_t k = 0; k < counts_.size(); ++k) {
      load.counts[k] = poisson_sample(rng_, static_cast<double>(counts_[k]));
    }
  } else {
    load.counts = counts_;
  }
  return load;
}

}  // namespace skewless
