// Stock workload substitute (see DESIGN.md):
//
// The paper's Stock dataset is 3 days of exchange records — 6M+ tuples
// over 1,036 stock IDs — characterized by "more abrupt and unexpected
// bursts on certain keys". We model a small key domain with a Zipf base
// distribution plus regime-switching bursts: occasionally a random set of
// symbols multiplies its volume for a few intervals, then reverts.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/zipf.h"
#include "engine/workload_source.h"

namespace skewless {

class StockSource final : public WorkloadSource {
 public:
  struct Options {
    std::uint64_t num_symbols = 1'036;
    double base_skew = 0.8;
    std::uint64_t tuples_per_interval = 2'000'000;
    /// Probability a new burst starts at a given interval.
    double burst_probability = 0.35;
    /// Burst volume multiplier range.
    double burst_min_factor = 8.0;
    double burst_max_factor = 40.0;
    /// Burst duration range (intervals).
    int burst_min_intervals = 2;
    int burst_max_intervals = 6;
    std::uint64_t seed = 13;
  };

  explicit StockSource(Options options);

  [[nodiscard]] std::size_t num_keys() const override {
    return static_cast<std::size_t>(options_.num_symbols);
  }

  [[nodiscard]] IntervalWorkload next_interval() override;

  /// Currently bursting symbols (for tests / inspection).
  [[nodiscard]] std::size_t active_bursts() const { return bursts_.size(); }

 private:
  struct Burst {
    KeyId symbol;
    double factor;
    int remaining;
  };

  Options options_;
  Xoshiro256 rng_;
  std::vector<std::uint64_t> base_counts_;
  std::vector<Burst> bursts_;
};

}  // namespace skewless
