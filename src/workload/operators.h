// Concrete stateful operator logics for the threaded engine:
//
//  * WordCountLogic — the Social experiment's topology: counts tuples per
//    key while keeping the recent tuples in memory (the paper's word
//    count "continuously maintain[s] current tuples in memory and
//    updat[es] the appearance frequency").
//  * SelfJoinLogic — the Stock experiment's topology: a sliding-window
//    self-join per key ("find potential high-frequency players with
//    dense buying and selling behavior"); each tuple matches against the
//    key's in-window history, so cost grows with state.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>

#include "engine/operator.h"

namespace skewless {

/// State for WordCountLogic: total count plus the in-memory tuple buffer.
class WordCountState final : public KeyState {
 public:
  [[nodiscard]] Bytes bytes() const override {
    return 24.0 + 16.0 * static_cast<Bytes>(recent_.size());
  }
  [[nodiscard]] std::uint64_t checksum() const override;
  void serialize(ByteWriter& out) const override;
  void expire_before(Micros watermark) override;

  static std::unique_ptr<WordCountState> deserialize(ByteReader& in);

  void add(Micros time_us, std::int64_t value);
  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] std::size_t buffered() const { return recent_.size(); }

 private:
  std::uint64_t count_ = 0;
  std::int64_t value_sum_ = 0;
  std::deque<std::pair<Micros, std::int64_t>> recent_;
};

class WordCountLogic final : public OperatorLogic {
 public:
  /// `cost_per_tuple_us` is the declared CPU cost reported to the
  /// controller per processed tuple.
  explicit WordCountLogic(Cost cost_per_tuple_us = 1.0)
      : cost_per_tuple_us_(cost_per_tuple_us) {}

  [[nodiscard]] std::unique_ptr<KeyState> make_state() const override {
    return std::make_unique<WordCountState>();
  }
  [[nodiscard]] std::unique_ptr<KeyState> deserialize_state(
      ByteReader& in) const override {
    return WordCountState::deserialize(in);
  }

  Cost process(const Tuple& tuple, KeyState& state,
               Collector& out) const override;

 private:
  Cost cost_per_tuple_us_;
};

/// State for SelfJoinLogic: the key's in-window tuple history.
class SelfJoinState final : public KeyState {
 public:
  [[nodiscard]] Bytes bytes() const override {
    return 16.0 * static_cast<Bytes>(window_.size());
  }
  [[nodiscard]] std::uint64_t checksum() const override;
  void serialize(ByteWriter& out) const override;
  void expire_before(Micros watermark) override;

  static std::unique_ptr<SelfJoinState> deserialize(ByteReader& in);

  void append(Micros time_us, std::int64_t value) {
    window_.emplace_back(time_us, value);
  }
  [[nodiscard]] std::size_t window_size() const { return window_.size(); }
  [[nodiscard]] const std::deque<std::pair<Micros, std::int64_t>>& window()
      const {
    return window_;
  }

 private:
  std::deque<std::pair<Micros, std::int64_t>> window_;
};

class SelfJoinLogic final : public OperatorLogic {
 public:
  /// Every tuple probes the key's window: cost = base + probe · |window|.
  /// A match (equal value sign heuristic stands in for the business
  /// predicate) emits one output tuple.
  SelfJoinLogic(Cost base_cost_us = 1.0, Cost probe_cost_us = 0.02,
                std::size_t max_window_tuples = 4096)
      : base_cost_us_(base_cost_us),
        probe_cost_us_(probe_cost_us),
        max_window_tuples_(max_window_tuples) {}

  [[nodiscard]] std::unique_ptr<KeyState> make_state() const override {
    return std::make_unique<SelfJoinState>();
  }
  [[nodiscard]] std::unique_ptr<KeyState> deserialize_state(
      ByteReader& in) const override {
    return SelfJoinState::deserialize(in);
  }

  Cost process(const Tuple& tuple, KeyState& state,
               Collector& out) const override;

 private:
  Cost base_cost_us_;
  Cost probe_cost_us_;
  std::size_t max_window_tuples_;
};

}  // namespace skewless
