// Adversarial workload generator — per-interval count snapshots engineered
// to stress exactly the mechanisms the sketch statistics path relies on.
// The paper evaluates mostly static Zipf skew; production hot sets move,
// and each attack here isolates one way they move (or one way the sketch
// itself can be gamed):
//
//  * rotating   — the hot set jumps wholesale between disjoint key groups
//                 every `rotation_period` intervals. Punishes promotion
//                 policies with no memory: a rotated-out group goes fully
//                 idle, then returns, so a single-interval tracker demotes
//                 and re-promotes the whole group each cycle (heavy-set
//                 churn), while a decayed tracker keeps its standing warm.
//  * skew-flip  — the Zipf skew parameter flips between a high and a low
//                 value every `flip_period` intervals, moving mass between
//                 the head and the tail without moving the ranking.
//  * pareto     — a static heavy Pareto(α) tail: many mid-weight keys just
//                 below any promotion threshold, maximizing sensitivity to
//                 where the threshold sits.
//  * churn      — key-churn flood: a sliding window of `churn_active` keys
//                 carries most of the mass and shifts by `churn_shift`
//                 fresh keys every interval, so yesterday's heavy keys are
//                 gone for good and the promotion pipeline runs at its
//                 structural maximum.
//  * collision  — hash-collision-heavy domain: the generator scans the key
//                 space for keys whose Kirsch–Mitzenmacher probes land in
//                 identical cells in EVERY row of the shared sketch family
//                 (same (h1, h2) modulo the width), then concentrates mass
//                 on that colliding bucket. Because all quantity sketches
//                 share one family (SketchStatsWindow::kSharedFamilySalt),
//                 these keys are indistinguishable to every Count-Min
//                 estimate at once — the worst case the normalization and
//                 the guaranteed (count − error) backfill must survive.
//
// Every attack is a pure function of (options, interval index): no hidden
// generator state, so two sources with equal options emit byte-identical
// streams — the property the determinism suite leans on.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/zipf.h"
#include "engine/workload_source.h"
#include "sketch/stats_provider.h"

namespace skewless {

enum class AttackKind {
  kRotatingHotSet,
  kSkewFlip,
  kParetoTail,
  kKeyChurnFlood,
  kHashCollision,
};

/// Parses a CLI attack name ("rotating", "skew-flip", "pareto", "churn",
/// "collision"); nullopt on anything else.
[[nodiscard]] std::optional<AttackKind> parse_attack(std::string_view name);
[[nodiscard]] const char* attack_name(AttackKind kind);
/// All attacks, in a fixed order (bench iteration).
[[nodiscard]] const std::vector<AttackKind>& all_attacks();

class AdversarialSource final : public WorkloadSource {
 public:
  struct Options {
    AttackKind attack = AttackKind::kRotatingHotSet;
    std::uint64_t num_keys = 100'000;
    std::uint64_t tuples_per_interval = 100'000;
    std::uint64_t seed = 7;
    /// Zipf skew of the background tail under every attack (and the
    /// "low" phase of skew-flip).
    double background_skew = 0.5;

    // -- rotating hot set --
    /// Intervals a hot group stays hot before the next group takes over.
    int rotation_period = 3;
    /// Number of disjoint hot groups in the rotation (a group is idle
    /// for (hot_groups − 1) · rotation_period intervals per cycle).
    int hot_groups = 4;
    std::uint64_t hot_keys_per_group = 64;
    /// Fraction of the interval's tuples carried by the hot group.
    double hot_mass = 0.6;

    // -- skew flip --
    int flip_period = 2;
    double skew_high = 1.2;

    // -- pareto tail --
    double pareto_alpha = 1.1;

    // -- key-churn flood --
    std::uint64_t churn_active = 4096;
    std::uint64_t churn_shift = 2048;
    double churn_mass = 0.7;

    // -- hash collision --
    /// The sketch family the colliding keys are engineered against; must
    /// match the run's SketchStatsConfig for the attack to bite.
    SketchStatsConfig sketch = {};
    /// Keys to place in the colliding bucket (capped by what a bounded
    /// scan of the domain actually finds — see colliding_keys()).
    std::uint64_t collision_keys = 32;
    /// How many keys of the domain to scan for full-family collisions.
    std::uint64_t collision_scan = 2'000'000;
    double collision_mass = 0.5;
  };

  explicit AdversarialSource(Options options);

  [[nodiscard]] std::size_t num_keys() const override {
    return static_cast<std::size_t>(options_.num_keys);
  }

  [[nodiscard]] IntervalWorkload next_interval() override;

  /// The counts attack `interval` (0-based) emits — next_interval()
  /// returns exactly counts_for(0), counts_for(1), ... Public so tests
  /// can check phase structure without consuming the source.
  [[nodiscard]] IntervalWorkload counts_for(std::int64_t interval) const;

  /// Hash-collision attack only: the engineered bucket, sorted ascending
  /// (empty for other attacks). All returned keys share every Count-Min
  /// cell in the run's shared sketch family.
  [[nodiscard]] const std::vector<KeyId>& colliding_keys() const {
    return colliding_;
  }

  /// The hot group active at `interval` under the rotating attack.
  [[nodiscard]] int rotating_group_at(std::int64_t interval) const;

  [[nodiscard]] const Options& options() const { return options_; }

 private:
  void find_collisions();

  Options options_;
  ZipfDistribution background_;        // tail for rotating/churn/collision
  ZipfDistribution flip_high_;         // skew-flip phases (shared ranking)
  std::vector<std::uint64_t> background_counts_;
  std::vector<std::uint64_t> flip_high_counts_;
  std::vector<std::uint64_t> flip_low_counts_;
  std::vector<std::uint64_t> pareto_counts_;
  std::vector<KeyId> colliding_;
  std::int64_t next_ = 0;
};

}  // namespace skewless
