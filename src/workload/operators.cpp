#include "workload/operators.h"

#include "common/assert.h"
#include "common/hash.h"

namespace skewless {

void WordCountState::add(Micros time_us, std::int64_t value) {
  ++count_;
  value_sum_ += value;
  recent_.emplace_back(time_us, value);
}

void WordCountState::expire_before(Micros watermark) {
  while (!recent_.empty() && recent_.front().first < watermark) {
    recent_.pop_front();
  }
}

void WordCountState::serialize(ByteWriter& out) const {
  out.u64(count_);
  out.i64(value_sum_);
  out.u32(static_cast<std::uint32_t>(recent_.size()));
  for (const auto& [time_us, value] : recent_) {
    out.i64(time_us);
    out.i64(value);
  }
}

std::unique_ptr<WordCountState> WordCountState::deserialize(ByteReader& in) {
  auto state = std::make_unique<WordCountState>();
  state->count_ = in.u64();
  state->value_sum_ = in.i64();
  const std::uint32_t n = in.u32();
  for (std::uint32_t i = 0; i < n; ++i) {
    const Micros t = in.i64();
    const std::int64_t v = in.i64();
    state->recent_.emplace_back(t, v);
  }
  return state;
}

std::uint64_t WordCountState::checksum() const {
  // Count and value sum fully determine the aggregate; the buffer is a
  // cache of recent tuples and is included via its size only (expiry
  // timing may differ across placements).
  return mix64(count_ * 0x9e37ULL + static_cast<std::uint64_t>(value_sum_));
}

Cost WordCountLogic::process(const Tuple& tuple, KeyState& state,
                             Collector& out) const {
  auto& wc = static_cast<WordCountState&>(state);
  wc.add(tuple.emit_micros, tuple.value);
  Tuple update;
  update.key = tuple.key;
  update.value = static_cast<std::int64_t>(wc.count());
  update.emit_micros = tuple.emit_micros;
  out.emit(update);
  return cost_per_tuple_us_;
}

void SelfJoinState::expire_before(Micros watermark) {
  while (!window_.empty() && window_.front().first < watermark) {
    window_.pop_front();
  }
}

void SelfJoinState::serialize(ByteWriter& out) const {
  out.u32(static_cast<std::uint32_t>(window_.size()));
  for (const auto& [time_us, value] : window_) {
    out.i64(time_us);
    out.i64(value);
  }
}

std::unique_ptr<SelfJoinState> SelfJoinState::deserialize(ByteReader& in) {
  auto state = std::make_unique<SelfJoinState>();
  const std::uint32_t n = in.u32();
  for (std::uint32_t i = 0; i < n; ++i) {
    const Micros t = in.i64();
    const std::int64_t v = in.i64();
    state->append(t, v);
  }
  return state;
}

std::uint64_t SelfJoinState::checksum() const {
  std::uint64_t acc = 0;
  for (const auto& [time_us, value] : window_) {
    acc += mix64(static_cast<std::uint64_t>(value) * 31 + 7);
  }
  return acc;
}

Cost SelfJoinLogic::process(const Tuple& tuple, KeyState& state,
                            Collector& out) const {
  auto& sj = static_cast<SelfJoinState&>(state);
  // Probe: count in-window tuples whose value shares the tuple's parity —
  // a cheap stand-in predicate that makes output depend on real state.
  std::uint64_t matches = 0;
  for (const auto& [time_us, value] : sj.window()) {
    if (((value ^ tuple.value) & 1) == 0) ++matches;
  }
  if (matches > 0) {
    Tuple match;
    match.key = tuple.key;
    match.value = static_cast<std::int64_t>(matches);
    match.emit_micros = tuple.emit_micros;
    out.emit(match);
  }
  const Cost cost =
      base_cost_us_ + probe_cost_us_ * static_cast<Cost>(sj.window_size());
  sj.append(tuple.emit_micros, tuple.value);
  // Bound the buffer so runaway keys cannot exhaust memory even if the
  // caller never sends expiry watermarks.
  while (sj.window_size() > max_window_tuples_) {
    sj.expire_before(sj.window().front().first + 1);
  }
  return cost;
}

}  // namespace skewless
