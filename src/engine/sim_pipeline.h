// Multi-operator pipeline composition over SimEngine stages.
//
// Models a chained topology (e.g. the streaming TPC-H Q5 plan: three join
// stages feeding an aggregation): in steady state the whole pipeline is
// throttled by its slowest stage (backpushing, Fig. 1 of the paper), and
// end-to-end latency is the sum of per-stage latencies.
#pragma once

#include <memory>
#include <vector>

#include "engine/sim_engine.h"

namespace skewless {

struct PipelineMetrics {
  IntervalId interval = 0;
  /// Head-of-pipeline tuple rate after global backpressure.
  double throughput_tps = 0.0;
  double offered_tps = 0.0;
  /// Sum of stage latencies.
  double end_to_end_latency_ms = 0.0;
  /// Index of the stage with the lowest admitted fraction this interval.
  std::size_t bottleneck_stage = 0;
  /// Per-stage interval metrics for drill-down.
  std::vector<IntervalMetrics> stages;
};

class SimPipeline {
 public:
  explicit SimPipeline(std::vector<std::unique_ptr<SimEngine>> stages);

  PipelineMetrics step();
  std::vector<PipelineMetrics> run(int intervals);

  [[nodiscard]] std::size_t num_stages() const { return stages_.size(); }
  [[nodiscard]] SimEngine& stage(std::size_t i) { return *stages_[i]; }

 private:
  std::vector<std::unique_ptr<SimEngine>> stages_;
  IntervalId interval_ = 0;
};

}  // namespace skewless
