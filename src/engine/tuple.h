// The unit of data flowing between operators: a key-value pair stamped
// with its emission time (for latency accounting) and a stream tag (to
// distinguish the two sides of a binary join).
#pragma once

#include <cstdint>

#include "common/types.h"

namespace skewless {

struct Tuple {
  KeyId key = 0;
  std::int64_t value = 0;
  /// Micros since engine start at the moment the spout emitted the tuple.
  Micros emit_micros = 0;
  /// Stream tag: 0 for single-stream operators; 0/1 for join sides.
  std::uint32_t stream = 0;
};

}  // namespace skewless
