#include "engine/threaded_engine.h"

#include <algorithm>
#include <chrono>

#include "common/assert.h"
#include "common/clock.h"
#include "common/cpu_topology.h"
#include "common/log.h"
#include "common/rng.h"

#if defined(__linux__) && defined(_GNU_SOURCE)
#include <pthread.h>
#include <sched.h>
#define SKEWLESS_HAS_THREAD_AFFINITY 1
#endif

namespace skewless {
namespace {

Micros steady_now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Worker-side collector: counts emissions (downstream wiring is handled
/// by pipelines at a higher level; the single-operator engine sinks them).
class CountingCollector final : public Collector {
 public:
  explicit CountingCollector(std::atomic<std::uint64_t>& counter)
      : counter_(counter) {}
  void emit(const Tuple& /*tuple*/) override {
    counter_.fetch_add(1, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t>& counter_;
};

/// Pins `thread` to the `slot`-th CPU of the topology-aware pin order:
/// one CPU per distinct physical core first, SMT siblings only after
/// every core already carries a worker — two workers sharing a core's
/// execution ports is strictly worse than one per core while cores
/// remain free. Returns whether the pin took effect.
bool pin_thread_to_slot(std::thread& thread, unsigned slot) {
#if defined(SKEWLESS_HAS_THREAD_AFFINITY)
  const std::vector<int>& order = cpu_topology().pin_order;
  if (order.empty()) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<unsigned>(order[slot % order.size()]), &set);
  return pthread_setaffinity_np(thread.native_handle(), sizeof(set), &set) ==
         0;
#else
  (void)thread;
  (void)slot;
  return false;
#endif
}

/// Realized imbalance max|c_d - avg|/avg over the per-worker costs.
double max_theta_of(const std::vector<double>& worker_cost) {
  double total = 0.0;
  for (const double c : worker_cost) total += c;
  if (total <= 0.0) return 0.0;
  const double avg = total / static_cast<double>(worker_cost.size());
  double worst = 0.0;
  for (const double c : worker_cost) {
    worst = std::max(worst, std::abs(c - avg) / avg);
  }
  return worst;
}

}  // namespace

ThreadedEngine::ThreadedEngine(ThreadedConfig config,
                               std::shared_ptr<OperatorLogic> logic,
                               std::unique_ptr<Controller> controller)
    : config_(config),
      logic_(std::move(logic)),
      controller_(std::move(controller)),
      num_workers_(controller_->num_instances()),
      migration_mailbox_(1 << 20) {
  SKW_EXPECTS(logic_ != nullptr);
  // No separate monitor in controller mode: the controller's provider
  // already sees every drained observation, and doubling it would
  // double exactly the stats memory the sketch mode exists to shrink.
  sketch_sink_ = controller_->slab_sink();
  start_workers();
}

ThreadedEngine::ThreadedEngine(ThreadedConfig config,
                               std::shared_ptr<OperatorLogic> logic,
                               InstanceId num_workers, std::uint64_t ring_seed)
    : config_(config),
      logic_(std::move(logic)),
      num_workers_(num_workers),
      migration_mailbox_(1 << 20) {
  SKW_EXPECTS(logic_ != nullptr);
  hash_ring_.emplace(num_workers, 128, ring_seed);
  // The key domain is discovered from the stream; the monitor grows on
  // demand (the exact provider via resize_keys, the sketch natively).
  monitor_ = make_stats_provider(config_.stats_mode, 0, 1, config_.sketch);
  sketch_sink_ = dynamic_cast<SketchSlabSink*>(monitor_.get());
  start_workers();
}

ThreadedEngine::~ThreadedEngine() { shutdown(); }

void ThreadedEngine::start_workers() {
  SKW_EXPECTS(num_workers_ > 0);
  engine_epoch_us_ = steady_now_us();
  const auto n = static_cast<std::size_t>(num_workers_);
  queues_.reserve(n);
  stores_.reserve(n);
  stats_.reserve(n);
  pending_batches_.resize(n);
  drain_scratch_.resize(n);
  pushed_msgs_.resize(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    queues_.push_back(
        std::make_unique<BoundedMpmcQueue<WorkerMsg>>(config_.queue_capacity));
    stores_.push_back(std::make_unique<StateStore>());
    stats_.push_back(std::make_unique<WorkerStats>());
    stats_.back()->per_key.reserve(256);
    drain_scratch_[i].reserve(256);
  }
  if (sketch_sink_ != nullptr) {
    // Sketch mode: thread-local slabs per worker, built against the
    // sink's own config so the Count-Min families match cell-for-cell.
    // The second buffer of each pair exists only under the asynchronous
    // merge — the inline path never seals, so it never swaps.
    slabs_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      auto pair = std::make_unique<SlabPair>();
      pair->bufs[0] = std::make_unique<ShardedWorkerSlab>(
          sketch_sink_->slab_config(), sketch_sink_->slab_shards());
      if (config_.async_merge) {
        pair->bufs[1] = std::make_unique<ShardedWorkerSlab>(
            sketch_sink_->slab_config(), sketch_sink_->slab_shards());
      }
      slabs_.push_back(std::move(pair));
    }
  }
#if defined(SKEWLESS_HAS_THREAD_AFFINITY)
  // Where the driver runs now — the merge thread binds its allocations
  // near this CPU's NUMA node, since the window it merges into was
  // allocated by the driver.
  driver_cpu_ = sched_getcpu();
#endif
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back(
        [this, i] { worker_loop(static_cast<InstanceId>(i)); });
    if (config_.pin_workers &&
        pin_thread_to_slot(workers_.back(), static_cast<unsigned>(i))) {
      ++pinned_workers_;
    }
  }
  if (async_merge_on()) {
    merge_thread_ = std::thread([this] { merge_loop(); });
    if (config_.pin_workers) {
      // The slot after the workers: the next free physical core, or the
      // first SMT sibling once the cores are full.
      pin_thread_to_slot(merge_thread_, static_cast<unsigned>(n));
    }
  }
}

void ThreadedEngine::worker_loop(InstanceId id) {
  const auto idx = static_cast<std::size_t>(id);
  StateStore& store = *stores_[idx];
  WorkerStats& stats = *stats_[idx];
  // Sketch mode: the worker starts on buffer 0 of its pair and (async
  // merge only) alternates at every seal.
  ShardedWorkerSlab* slab =
      slabs_.empty() ? nullptr : slabs_[idx]->bufs[0].get();
  // First-touch NUMA placement: the slab buffers were mapped (untouched)
  // on the driver thread; this worker commits each buffer's pages the
  // first time it is about to write it, so they land on the worker's
  // node. Done INSIDE message processing — never at loop top — so the
  // done_msgs release/acquire protocol orders the prefault writes before
  // any driver/merge read of the cells.
  bool prefaulted[2] = {false, false};
  std::size_t active_buf = 0;
  CountingCollector collector(total_outputs_);
  // Per-batch aggregation buffer, reused across batches (clear() keeps
  // the bucket array, so steady state allocates nothing per batch).
  std::unordered_map<KeyId, PerKeyStat> local;
  local.reserve(256);

  while (true) {
    auto msg = queues_[idx]->pop();
    if (!msg.has_value()) return;  // queue closed
    // Publish completion only after every effect of the message is done
    // — the release pairs with the driver's acquire in its quiescence
    // wait, ordering all slab/state writes before any driver read.
    struct DoneGuard {
      std::atomic<std::uint64_t>& counter;
      ~DoneGuard() { counter.fetch_add(1, std::memory_order_release); }
    } done_guard{stats.done_msgs};

    if (auto* batch = std::get_if<BatchMsg>(&*msg)) {
      const Micros now = steady_now_us();
      double latency_acc = 0.0;
      std::uint64_t latency_n = 0;
      // Per-key aggregation outside any shared structure: each distinct
      // key pays ONE slab/map update per batch, not one per tuple.
      local.clear();
      for (const Tuple& t : batch->tuples) {
        KeyState& state =
            store.get_or_create(t.key, [&] { return logic_->make_state(); });
        const Bytes before = state.bytes();
        const Cost cost = logic_->process(t, state, collector);
        const Bytes delta = std::max(0.0, state.bytes() - before);
        auto& entry = local[t.key];
        entry.cost += cost;
        entry.state_bytes += delta;
        ++entry.frequency;
        latency_acc +=
            static_cast<double>(now - engine_epoch_us_ - t.emit_micros);
        ++latency_n;
      }
      total_processed_.fetch_add(batch->tuples.size(),
                                 std::memory_order_relaxed);
      if (slab != nullptr) {
        // Sketch mode: fold the batch into this worker's thread-local
        // slab — no lock anywhere, scalars included (they ride the slab
        // and are published by the seal / quiescence protocol). The
        // batched fold vector-hashes all cold probes in one call and
        // prefetches a few entries ahead (see add_batch).
        if (!prefaulted[active_buf]) {
          slab->prefault();
          prefaulted[active_buf] = true;
        }
        slab->add_batch(local);
        WorkerSketchSlab::IntervalScalars& sc = slab->scalars();
        sc.processed += batch->tuples.size();
        sc.latency_sum_us += latency_acc;
        sc.latency_samples += latency_n;
      } else {
        // Exact mode — one lock per batch: the merge and every counter
        // update share a single critical section.
        std::lock_guard lock(stats.mu);
        for (const auto& [key, cb] : local) {
          auto& entry = stats.per_key[key];
          entry.cost += cb.cost;
          entry.state_bytes += cb.state_bytes;
          entry.frequency += cb.frequency;
        }
        stats.processed += batch->tuples.size();
        stats.latency_sum_us += latency_acc;
        stats.latency_samples += latency_n;
      }
    } else if (auto* extract = std::get_if<ExtractMsg>(&*msg)) {
      for (const KeyId key : extract->keys) {
        ExtractedState out;
        out.key = key;
        out.from = id;
        out.state = store.extract(key);
        const bool pushed = migration_mailbox_.push(std::move(out));
        SKW_ASSERT(pushed);
      }
    } else if (auto* install = std::get_if<InstallMsg>(&*msg)) {
      for (auto& [key, state] : install->states) {
        store.install(key, std::move(state));
      }
    } else if (auto* expire = std::get_if<ExpireMsg>(&*msg)) {
      store.expire_before(expire->watermark);
    } else if (auto* seal = std::get_if<SealMsg>(&*msg)) {
      // Epoch boundary (async merge): stamp + release-publish the active
      // buffer, swap onto the peer (cleared by the merge path before the
      // previous epoch's heavy set was published, which we waited for),
      // and install the closing epoch's post-roll heavy set before any
      // next-epoch batch — the acquire on heavy_epoch_ pairs with the
      // publisher's release, ordering the merge path's writes (peer
      // clear, heavy_published_) before ours.
      SKW_ASSERT(slab != nullptr);
      SlabPair& pair = *slabs_[idx];
      slab->set_epoch(seal->epoch);
      pair.sealed_epoch.store(seal->epoch, std::memory_order_release);
      {
        // Pair the store with the merge thread's wait: the empty
        // critical section makes the notify visible to a waiter that
        // checked the predicate just before the store.
        std::lock_guard lock(seal_mu_);
      }
      seal_cv_.notify_all();
      active_buf = static_cast<std::size_t>(seal->epoch & 1);
      slab = pair.bufs[active_buf].get();
      if (heavy_epoch_.load(std::memory_order_acquire) < seal->epoch) {
        // Sleep (never spin — the merge path needs the cycles) until the
        // closing epoch's roll publishes the new heavy set.
        std::unique_lock lock(heavy_mu_);
        heavy_cv_.wait(lock, [&] {
          return heavy_epoch_.load(std::memory_order_acquire) >=
                     seal->epoch ||
                 stopping_.load(std::memory_order_acquire);
        });
      }
      if (heavy_epoch_.load(std::memory_order_acquire) >= seal->epoch) {
        slab->set_heavy_keys(heavy_published_);
      }
    } else {
      SKW_ASSERT(std::holds_alternative<StopMsg>(*msg));
      return;
    }
  }
}

void ThreadedEngine::route_chunk(const Tuple* tuples, std::size_t n) {
  // One batched F(k) evaluation per chunk: the routing-table lookups run
  // tight, and the table misses' ring hashes go through the vectorized
  // hash kernel in a single pass (AssignmentFunction::route_batch /
  // ConsistentHashRing::owner_batch) instead of one scalar mix64 per
  // tuple on the expand loop's critical path.
  route_keys_.resize(n);
  route_dests_.resize(n);
  for (std::size_t j = 0; j < n; ++j) route_keys_[j] = tuples[j].key;
  if (controller_) {
    controller_->assignment().route_batch(route_keys_.data(), n,
                                          route_dests_.data());
  } else {
    hash_ring_->owner_batch(route_keys_.data(), n, route_dests_.data());
  }
  for (std::size_t j = 0; j < n; ++j) {
    const InstanceId d = route_dests_[j];
    auto& batch = pending_batches_[static_cast<std::size_t>(d)];
    batch.push_back(tuples[j]);
    batch.back().emit_micros = steady_now_us() - engine_epoch_us_;
    if (batch.size() >= config_.batch_size) flush_batch(d);
  }
}

void ThreadedEngine::flush_batch(InstanceId d) {
  auto& batch = pending_batches_[static_cast<std::size_t>(d)];
  if (batch.empty()) return;
  BatchMsg msg;
  msg.tuples = std::move(batch);
  batch.clear();
  const bool ok =
      queues_[static_cast<std::size_t>(d)]->push(WorkerMsg(std::move(msg)));
  SKW_ASSERT(ok);
  ++pushed_msgs_[static_cast<std::size_t>(d)];
}

void ThreadedEngine::flush_batches() {
  for (InstanceId d = 0; d < num_workers_; ++d) flush_batch(d);
}

void ThreadedEngine::drain_worker_stats(ThreadedIntervalReport& report) {
  double latency_sum = 0.0;
  std::uint64_t latency_n = 0;
  std::vector<double> worker_cost(stats_.size(), 0.0);
  for (std::size_t w = 0; w < stats_.size(); ++w) {
    WorkerStats& ws = *stats_[w];
    if (sketch_sink_ != nullptr) {
      // Inline boundary merge, in worker-index order — a fixed order, so
      // the merged sketch state is byte-identical regardless of which
      // worker finished first. The quiescence wait in finish_boundary
      // ordered all slab writes before this read; no lock is needed (the
      // scalars ride the slab too).
      ShardedWorkerSlab& slab = *slabs_[w]->bufs[0];
      report.processed += slab.scalars().processed;
      latency_sum += slab.scalars().latency_sum_us;
      latency_n += slab.scalars().latency_samples;
      worker_cost[w] = slab.total_cost();
      report.stats_memory_bytes += slab.memory_bytes();
      // Worker w IS instance w: the whole slab's cold stream ran there,
      // which is exactly the attribution the compact planning view's
      // per-instance cold residual aggregates need.
      WallTimer merge_timer;
      sketch_sink_->absorb_slab(slab, static_cast<InstanceId>(w));
      report.merge_ms += merge_timer.elapsed_millis();
      slab.clear();
      continue;
    }
    auto& drained = drain_scratch_[w];
    {
      // Single short critical section per worker: grab every scalar
      // counter and swap out the per-key map, handing back last
      // interval's cleared, pre-bucketed map.
      std::lock_guard lock(ws.mu);
      drained.swap(ws.per_key);
      report.processed += ws.processed;
      ws.processed = 0;
      latency_sum += ws.latency_sum_us;
      latency_n += ws.latency_samples;
      ws.latency_sum_us = 0.0;
      ws.latency_samples = 0;
    }
    // Exact mode: account the worker-side map at its fullest (nodes are
    // freed by the clear below), then replay it into the provider.
    constexpr std::size_t kNodeOverhead = 2 * sizeof(void*);
    report.stats_memory_bytes +=
        drained.size() *
            (sizeof(std::pair<const KeyId, PerKeyStat>) + kNodeOverhead) +
        (drained.bucket_count() + ws.per_key.bucket_count()) * sizeof(void*);
    WallTimer merge_timer;
    for (const auto& [key, cb] : drained) {
      worker_cost[w] += cb.cost;
      const auto dest = static_cast<InstanceId>(w);
      if (controller_) {
        controller_->record(key, cb.cost, cb.state_bytes, cb.frequency, dest);
      } else {
        if (monitor_->mode() == StatsMode::kExact &&
            key >= monitor_->num_keys()) {
          monitor_->resize_keys(static_cast<std::size_t>(key) + 1);
        }
        monitor_->record(key, cb.cost, cb.state_bytes, cb.frequency, dest);
      }
    }
    report.merge_ms += merge_timer.elapsed_millis();
    // clear() keeps the bucket array; the next swap hands it back to the
    // worker so steady-state intervals do no hash-table allocation.
    drained.clear();
  }
  report.avg_latency_ms =
      latency_n > 0 ? latency_sum / static_cast<double>(latency_n) / 1000.0
                    : 0.0;
  // Imbalance from the realized per-worker work (works in every mode; in
  // controller mode end_interval() recomputes the same value from the
  // recorded statistics).
  report.max_theta = max_theta_of(worker_cost);
}

void ThreadedEngine::merge_sealed_slabs(std::uint64_t epoch,
                                        BoundaryResult& result) {
  std::vector<double> worker_cost(slabs_.size(), 0.0);
  for (std::size_t w = 0; w < slabs_.size(); ++w) {
    SlabPair& pair = *slabs_[w];
    // The seal is the last message of the epoch in worker w's FIFO, so
    // sealed_epoch reaching `epoch` (acquire, pairing with the worker's
    // release) is per-worker quiescence: every batch of the epoch is
    // folded into the sealed buffer before this read. Sleep on the seal
    // signal rather than spinning — on a busy machine the spin would
    // steal exactly the cycles the straggler worker needs to drain.
    if (pair.sealed_epoch.load(std::memory_order_acquire) < epoch) {
      std::unique_lock lock(seal_mu_);
      seal_cv_.wait(lock, [&] {
        return pair.sealed_epoch.load(std::memory_order_acquire) >= epoch ||
               stopping_.load(std::memory_order_acquire);
      });
    }
    if (pair.sealed_epoch.load(std::memory_order_acquire) < epoch) return;
    ShardedWorkerSlab& slab = *pair.bufs[(epoch - 1) & 1];
    SKW_ASSERT(slab.epoch() == epoch);
    result.processed += slab.scalars().processed;
    result.latency_sum_us += slab.scalars().latency_sum_us;
    result.latency_samples += slab.scalars().latency_samples;
    worker_cost[w] = slab.total_cost();
    result.slab_memory_bytes += slab.memory_bytes();
    // Worker-index order keeps the merged window byte-identical across
    // schedulings; `w` is the slab's owning instance (cold-residual
    // attribution, as in the inline path).
    WallTimer merge_timer;
    sketch_sink_->absorb_slab(slab, static_cast<InstanceId>(w));
    result.merge_ms += merge_timer.elapsed_millis();
    slab.clear();
    // The worker's active peer cannot be measured while it accumulates;
    // the just-cleared buffer (same capacities, empty contents) stands
    // in for it so the double-buffer footprint is still accounted.
    result.slab_memory_bytes += slab.memory_bytes();
  }
  result.max_theta = max_theta_of(worker_cost);
}

void ThreadedEngine::merge_loop() {
  // Prefer allocations near the driver's NUMA node: the window this
  // thread absorbs into (and everything it grows) was allocated by the
  // driver, so keeping the merge path's memory on that node avoids
  // remote-node traffic on every absorb. Graceful no-op without libnuma
  // or on single-node hosts.
  bind_current_thread_to_node_of_cpu(driver_cpu_);
  std::uint64_t epoch = 1;
  while (true) {
    {
      std::unique_lock lock(merge_mu_);
      merge_cv_.wait(lock,
                     [&] { return merge_requested_ >= epoch || merge_stop_; });
      if (merge_requested_ < epoch) return;  // stopping, nothing pending
    }
    BoundaryResult result;
    merge_sealed_slabs(epoch, result);
    if (stopping_.load(std::memory_order_acquire)) return;
    if (!controller_) {
      // Hash-only mode: the merge thread owns the monitor's roll and the
      // heavy-set publication — the sealed workers resume as soon as the
      // roll lands, with no driver involvement at all.
      monitor_->roll();
      result.provider_memory_bytes = monitor_->memory_bytes();
      publish_heavy_set(epoch);
    }
    {
      std::lock_guard lock(merge_mu_);
      boundary_result_ = result;
      merge_completed_ = epoch;
    }
    merge_cv_.notify_all();
    ++epoch;
  }
}

void ThreadedEngine::refresh_worker_heavy_sets() {
  if (sketch_sink_ == nullptr) return;
  const std::vector<KeyId> keys = sketch_sink_->heavy_keys();
  for (auto& pair : slabs_) pair->bufs[0]->set_heavy_keys(keys);
}

void ThreadedEngine::publish_heavy_set(std::uint64_t epoch) {
  heavy_published_ = sketch_sink_->heavy_keys();
  heavy_epoch_.store(epoch, std::memory_order_release);
  {
    std::lock_guard lock(heavy_mu_);
  }
  heavy_cv_.notify_all();
}

Bytes ThreadedEngine::execute_migration(const RebalancePlan& plan) {
  // Group the moves by source worker and extract.
  std::vector<std::vector<KeyId>> by_source(
      static_cast<std::size_t>(num_workers_));
  for (const KeyMove& mv : plan.moves) {
    by_source[static_cast<std::size_t>(mv.from)].push_back(mv.key);
  }
  std::size_t expected = 0;
  for (InstanceId d = 0; d < num_workers_; ++d) {
    auto& keys = by_source[static_cast<std::size_t>(d)];
    if (keys.empty()) continue;
    expected += keys.size();
    ExtractMsg msg;
    msg.keys = std::move(keys);
    const bool ok =
        queues_[static_cast<std::size_t>(d)]->push(WorkerMsg(std::move(msg)));
    SKW_ASSERT(ok);
    ++pushed_msgs_[static_cast<std::size_t>(d)];
  }

  // Collect the extracted states (workers reach the Extract message after
  // finishing every tuple routed before the migration — FIFO ordering).
  std::unordered_map<KeyId, InstanceId> dest_of;
  dest_of.reserve(plan.moves.size());
  for (const KeyMove& mv : plan.moves) dest_of.emplace(mv.key, mv.to);

  std::vector<std::vector<std::pair<KeyId, std::unique_ptr<KeyState>>>>
      by_dest(static_cast<std::size_t>(num_workers_));
  Bytes wire_bytes = 0.0;
  for (std::size_t i = 0; i < expected; ++i) {
    auto extracted = migration_mailbox_.pop();
    SKW_ASSERT(extracted.has_value());
    if (extracted->state == nullptr) continue;  // key had no state yet
    std::unique_ptr<KeyState> state = std::move(extracted->state);
    if (config_.serialize_migration) {
      // Round-trip through the byte codec, exactly as a cross-node
      // migration would ship it.
      ByteWriter writer;
      state->serialize(writer);
      wire_bytes += static_cast<Bytes>(writer.size());
      const auto payload = writer.take();
      ByteReader reader(payload);
      auto restored = logic_->deserialize_state(reader);
      SKW_ASSERT(reader.exhausted());
      SKW_ASSERT(restored->checksum() == state->checksum());
      state = std::move(restored);
    }
    const InstanceId to = dest_of.at(extracted->key);
    by_dest[static_cast<std::size_t>(to)].emplace_back(
        extracted->key, std::move(state));
  }

  // Install at the destinations; tuples routed after this call sit behind
  // the Install message in the destination queue.
  for (InstanceId d = 0; d < num_workers_; ++d) {
    auto& states = by_dest[static_cast<std::size_t>(d)];
    if (states.empty()) continue;
    InstallMsg msg;
    msg.states = std::move(states);
    const bool ok =
        queues_[static_cast<std::size_t>(d)]->push(WorkerMsg(std::move(msg)));
    SKW_ASSERT(ok);
    ++pushed_msgs_[static_cast<std::size_t>(d)];
  }
  return wire_bytes;
}

ThreadedIntervalReport ThreadedEngine::ingest(const std::vector<Tuple>& tuples) {
  SKW_EXPECTS(!stopped_);
  SKW_EXPECTS(open_boundary_epoch_ == 0);  // previous boundary finished
  ThreadedIntervalReport report;
  report.interval = interval_;
  WallTimer timer;
  constexpr std::size_t kRouteChunk = 1024;
  for (std::size_t base = 0; base < tuples.size(); base += kRouteChunk) {
    route_chunk(tuples.data() + base,
                std::min(kRouteChunk, tuples.size() - base));
  }
  report.emitted = tuples.size();
  flush_batches();
  total_emitted_ += report.emitted;
  report.wall_ms = timer.elapsed_millis();
  return report;
}

void ThreadedEngine::begin_boundary(ThreadedIntervalReport& report) {
  WallTimer timer;
  if (async_merge_on()) {
    // Seal the epoch: one lightweight message per worker (FIFO puts it
    // behind every batch of the closing interval), then hand the epoch
    // to the merge thread. Ingestion is free to continue immediately —
    // next-interval batches queue behind the seals and land in the
    // workers' swapped-in buffers.
    const auto epoch = static_cast<std::uint64_t>(interval_) + 1;
    open_boundary_epoch_ = epoch;
    for (InstanceId d = 0; d < num_workers_; ++d) {
      const auto di = static_cast<std::size_t>(d);
      // force_push: the seal is a control message — blocking behind a
      // full data queue here would BE the boundary stall this protocol
      // removes (the driver runs ahead of the workers, so the queues are
      // routinely at capacity when the interval closes).
      const bool ok = queues_[di]->force_push(WorkerMsg(SealMsg{epoch}));
      SKW_ASSERT(ok);
      ++pushed_msgs_[di];
    }
    {
      std::lock_guard lock(merge_mu_);
      merge_requested_ = epoch;
    }
    merge_cv_.notify_all();
  }
  const double seg = timer.elapsed_millis();
  open_boundary_stall_ms_ = seg;
  report.wall_ms += seg;
}

void ThreadedEngine::finish_boundary(ThreadedIntervalReport& report) {
  WallTimer timer;
  if (async_merge_on()) {
    const std::uint64_t epoch =
        open_boundary_epoch_ != 0
            ? open_boundary_epoch_
            : static_cast<std::uint64_t>(interval_) + 1;
    BoundaryResult r;
    {
      std::unique_lock lock(merge_mu_);
      merge_cv_.wait(lock, [&] { return merge_completed_ >= epoch; });
      r = boundary_result_;
    }
    report.processed += r.processed;
    report.avg_latency_ms =
        r.latency_samples > 0
            ? r.latency_sum_us / static_cast<double>(r.latency_samples) /
                  1000.0
            : 0.0;
    report.max_theta = r.max_theta;
    report.merge_ms = r.merge_ms;
    report.stats_memory_bytes += r.slab_memory_bytes;
    if (controller_) {
      // The controller rolls and plans over the fully-merged epoch; the
      // heavy set is published (unblocking the sealed workers) before
      // any migration messages need processing.
      if (auto plan = controller_->end_interval()) {
        report.migrated = true;
        report.moves = plan->moves.size();
        report.migration_bytes = plan->migration_bytes;
        report.generation_micros = plan->generation_micros;
        publish_heavy_set(epoch);
        report.migration_wire_bytes = execute_migration(*plan);
      } else {
        publish_heavy_set(epoch);
      }
      report.max_theta = controller_->last_observed_theta();
      report.stats_memory_bytes += controller_->stats_memory_bytes();
    } else {
      report.stats_memory_bytes += r.provider_memory_bytes;
    }
  } else {
    // Inline boundary: wait for every pushed message to be fully
    // processed so the interval's statistics are complete before
    // planning. Counting completions instead of polling queue emptiness
    // is what makes this gap-free: a message a worker has popped but not
    // finished keeps done_msgs behind pushed_msgs_.
    for (InstanceId d = 0; d < num_workers_; ++d) {
      const auto di = static_cast<std::size_t>(d);
      while (stats_[di]->done_msgs.load(std::memory_order_acquire) !=
             pushed_msgs_[di]) {
        std::this_thread::yield();
      }
    }
    drain_worker_stats(report);  // also accounts worker-side stats memory
    if (monitor_) monitor_->roll();
    report.stats_memory_bytes += controller_
                                     ? controller_->stats_memory_bytes()
                                     : monitor_->memory_bytes();
    if (controller_) {
      if (auto plan = controller_->end_interval()) {
        report.migrated = true;
        report.moves = plan->moves.size();
        report.migration_bytes = plan->migration_bytes;
        report.generation_micros = plan->generation_micros;
        report.migration_wire_bytes = execute_migration(*plan);
      }
      report.max_theta = controller_->last_observed_theta();
    }
    // The roll just promoted/demoted: re-broadcast the heavy set so next
    // interval's hot keys accumulate exactly in the worker slabs.
    // Workers only read the heavy set while processing a Batch message,
    // and the next batch is pushed (queue-synchronized) after this
    // write.
    refresh_worker_heavy_sets();
  }
  if (controller_ && config_.expire_lag_intervals > 0) {
    const Micros watermark =
        (interval_ + 1 - config_.expire_lag_intervals) * 1'000'000;
    for (InstanceId d = 0; d < num_workers_; ++d) {
      ExpireMsg msg{watermark};
      const bool ok =
          queues_[static_cast<std::size_t>(d)]->push(WorkerMsg(msg));
      // A dropped-but-counted message would deadlock the quiescence
      // wait; push only fails after close(), which cannot happen here.
      SKW_ASSERT(ok);
      ++pushed_msgs_[static_cast<std::size_t>(d)];
    }
  }
  const double seg = timer.elapsed_millis();
  report.stall_ms = open_boundary_stall_ms_ + seg;
  report.wall_ms += seg;
  report.throughput_tps = report.wall_ms > 0.0
                              ? static_cast<double>(report.processed) /
                                    (report.wall_ms / 1000.0)
                              : 0.0;
  if (controller_) controller_->note_boundary(report.merge_ms, report.stall_ms);
  open_boundary_epoch_ = 0;
  open_boundary_stall_ms_ = 0.0;
  ++interval_;
}

ThreadedIntervalReport ThreadedEngine::run_interval(
    const std::vector<Tuple>& tuples) {
  ThreadedIntervalReport report = ingest(tuples);
  begin_boundary(report);
  finish_boundary(report);
  return report;
}

std::vector<ThreadedIntervalReport> ThreadedEngine::run(WorkloadSource& source,
                                                        int intervals,
                                                        std::uint64_t seed) {
  std::vector<ThreadedIntervalReport> reports;
  reports.reserve(static_cast<std::size_t>(intervals));
  Xoshiro256 rng(seed);

  const auto expand = [&](std::vector<Tuple>& tuples) {
    const IntervalWorkload load = source.next_interval();
    tuples.clear();
    tuples.reserve(static_cast<std::size_t>(load.total()));
    for (std::size_t k = 0; k < load.counts.size(); ++k) {
      for (std::uint64_t c = 0; c < load.counts[k]; ++c) {
        Tuple t;
        t.key = static_cast<KeyId>(k);
        t.value = static_cast<std::int64_t>(c);
        tuples.push_back(t);
      }
    }
    // Deterministic shuffle so hot keys are interleaved like a stream.
    for (std::size_t j = tuples.size(); j > 1; --j) {
      std::swap(tuples[j - 1], tuples[rng.next_below(j)]);
    }
  };

  std::vector<Tuple> tuples;
  std::vector<Tuple> next;
  if (intervals > 0) expand(tuples);
  for (int i = 0; i < intervals; ++i) {
    ThreadedIntervalReport report = ingest(tuples);
    begin_boundary(report);
    // Overlap window: generate (expand + shuffle) the NEXT interval's
    // tuples while the merge thread absorbs this interval's sealed
    // slabs. The tuple source keeps flowing through the boundary — the
    // wall/stall accounting in begin/finish deliberately excludes this
    // segment, because the driver is doing next-interval source work,
    // not waiting. Without the async merge this is a plain sequential
    // expansion (begin_boundary was a no-op).
    if (i + 1 < intervals) expand(next);
    finish_boundary(report);
    reports.push_back(report);
    std::swap(tuples, next);
    next.clear();
  }
  return reports;
}

void ThreadedEngine::shutdown() {
  if (stopped_) return;
  stopped_ = true;
  stopping_.store(true, std::memory_order_release);
  // Wake any worker parked at the heavy-set barrier (a worker that
  // checks the predicate later sees stopping_ already set).
  {
    std::lock_guard lock(heavy_mu_);
  }
  heavy_cv_.notify_all();
  flush_batches();
  for (auto& q : queues_) q->push(WorkerMsg(StopMsg{}));
  for (auto& q : queues_) q->close();
  for (auto& t : workers_) {
    if (t.joinable()) t.join();
  }
  if (merge_thread_.joinable()) {
    // Workers are gone; release the merge thread from any seal wait and
    // from its epoch wait.
    {
      std::lock_guard lock(seal_mu_);
    }
    seal_cv_.notify_all();
    {
      std::lock_guard lock(merge_mu_);
      merge_stop_ = true;
    }
    merge_cv_.notify_all();
    merge_thread_.join();
  }
}

std::uint64_t ThreadedEngine::state_checksum() const {
  SKW_EXPECTS(stopped_);
  std::uint64_t acc = 0;
  for (const auto& store : stores_) acc += store->checksum();
  return acc;
}

std::size_t ThreadedEngine::total_state_entries() const {
  SKW_EXPECTS(stopped_);
  std::size_t n = 0;
  for (const auto& store : stores_) n += store->size();
  return n;
}

}  // namespace skewless
