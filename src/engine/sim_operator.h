// Cost/state models of stateful operators for the simulation engine.
//
// The simulator charges virtual CPU time per tuple and tracks per-key
// state growth; both depend on the operator semantics. Concrete models
// (word count, windowed self-join, partial aggregation) live in
// src/workload; this header defines the interface.
#pragma once

#include <cstdint>

#include "common/types.h"

namespace skewless {

class SimOperator {
 public:
  virtual ~SimOperator() = default;

  /// Virtual CPU micros consumed by processing `count` tuples of key k
  /// during one interval, given the key's current windowed state size.
  [[nodiscard]] virtual Cost batch_cost(KeyId key, std::uint64_t count,
                                        Bytes current_state) const = 0;

  /// Bytes of state appended for key k by `count` tuples in one interval
  /// (the s_i(k) statistic; the window S_i(k, w) is maintained outside).
  [[nodiscard]] virtual Bytes state_delta(KeyId key,
                                          std::uint64_t count) const = 0;

  /// Mean per-tuple service time (micros) at zero state, used for the
  /// latency baseline.
  [[nodiscard]] virtual Cost base_tuple_cost() const = 0;
};

/// Constant-cost stateful operator: every tuple costs `cost_us` and
/// appends `bytes_per_tuple` of state (word count keeping current tuples
/// in memory behaves like this).
class UniformCostOperator final : public SimOperator {
 public:
  UniformCostOperator(Cost cost_us, Bytes bytes_per_tuple)
      : cost_us_(cost_us), bytes_per_tuple_(bytes_per_tuple) {}

  [[nodiscard]] Cost batch_cost(KeyId /*key*/, std::uint64_t count,
                                Bytes /*state*/) const override {
    return cost_us_ * static_cast<Cost>(count);
  }
  [[nodiscard]] Bytes state_delta(KeyId /*key*/,
                                  std::uint64_t count) const override {
    return bytes_per_tuple_ * static_cast<Bytes>(count);
  }
  [[nodiscard]] Cost base_tuple_cost() const override { return cost_us_; }

 private:
  Cost cost_us_;
  Bytes bytes_per_tuple_;
};

/// Windowed self-join cost model: each incoming tuple probes the key's
/// in-window state, so per-tuple cost grows with state size (the Stock
/// self-join workload). cost = base + probe_factor · (state / tuple_bytes).
class SelfJoinCostOperator final : public SimOperator {
 public:
  SelfJoinCostOperator(Cost base_us, Bytes bytes_per_tuple,
                       double probe_us_per_stored_tuple)
      : base_us_(base_us),
        bytes_per_tuple_(bytes_per_tuple),
        probe_us_(probe_us_per_stored_tuple) {}

  [[nodiscard]] Cost batch_cost(KeyId /*key*/, std::uint64_t count,
                                Bytes state) const override {
    const double stored = state / bytes_per_tuple_;
    return static_cast<Cost>(count) * (base_us_ + probe_us_ * stored);
  }
  [[nodiscard]] Bytes state_delta(KeyId /*key*/,
                                  std::uint64_t count) const override {
    return bytes_per_tuple_ * static_cast<Bytes>(count);
  }
  [[nodiscard]] Cost base_tuple_cost() const override { return base_us_; }

 private:
  Cost base_us_;
  Bytes bytes_per_tuple_;
  double probe_us_;
};

}  // namespace skewless
