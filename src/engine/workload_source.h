// Interval-granular workload abstraction consumed by the simulation
// engine: a source produces, for each interval T_i, the number of tuples
// per key. Generators in src/workload implement this for synthetic Zipf,
// Social, Stock and TPC-H streams.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace skewless {

struct IntervalWorkload {
  /// counts[k] = g_i(k): tuples carrying key k during this interval.
  std::vector<std::uint64_t> counts;

  [[nodiscard]] std::uint64_t total() const {
    std::uint64_t t = 0;
    for (const auto c : counts) t += c;
    return t;
  }
};

class WorkloadSource {
 public:
  virtual ~WorkloadSource() = default;

  /// Size of the dense key domain |K|.
  [[nodiscard]] virtual std::size_t num_keys() const = 0;

  /// Produces the next interval's per-key tuple counts.
  [[nodiscard]] virtual IntervalWorkload next_interval() = 0;
};

}  // namespace skewless
