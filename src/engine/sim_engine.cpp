#include "engine/sim_engine.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"

namespace skewless {

SimEngine::SimEngine(SimConfig config, std::unique_ptr<SimOperator> op,
                     std::unique_ptr<WorkloadSource> source,
                     std::unique_ptr<Controller> controller)
    : config_(config),
      op_(std::move(op)),
      source_(std::move(source)),
      controller_(std::move(controller)),
      mode_(RoutingMode::kController),
      num_instances_(controller_->num_instances()),
      state_(make_stats_provider(config.stats_mode, source_->num_keys(),
                                 controller_->config().window,
                                 config.sketch)),
      pause_debt_(static_cast<std::size_t>(num_instances_), 0),
      key_paused_(source_->num_keys(), false) {
  SKW_EXPECTS(op_ && source_ && controller_);
}

SimEngine::SimEngine(SimConfig config, std::unique_ptr<SimOperator> op,
                     std::unique_ptr<WorkloadSource> source, RoutingMode mode)
    : config_(config),
      op_(std::move(op)),
      source_(std::move(source)),
      mode_(mode),
      num_instances_(config.num_instances),
      state_(make_stats_provider(config.stats_mode, source_->num_keys(),
                                 config.state_window, config.sketch)),
      pause_debt_(static_cast<std::size_t>(num_instances_), 0),
      key_paused_(source_->num_keys(), false) {
  SKW_EXPECTS(mode != RoutingMode::kController);
  switch (mode) {
    case RoutingMode::kHashOnly:
      hash_router_.emplace(ConsistentHashRing(num_instances_));
      break;
    case RoutingMode::kShuffle:
      shuffle_router_.emplace(num_instances_);
      break;
    case RoutingMode::kPkg:
      pkg_router_.emplace(num_instances_);
      break;
    case RoutingMode::kController:
      break;
  }
}

void SimEngine::add_instance() {
  ++num_instances_;
  pause_debt_.push_back(0);
  switch (mode_) {
    case RoutingMode::kController:
      controller_->add_instance();
      break;
    case RoutingMode::kHashOnly:
      hash_router_->add_instance();
      break;
    case RoutingMode::kShuffle:
      shuffle_router_->add_instance();
      break;
    case RoutingMode::kPkg:
      pkg_router_->add_instance();
      break;
  }
}

IntervalMetrics SimEngine::step() {
  const IntervalWorkload load = source_->next_interval();
  SKW_EXPECTS(load.counts.size() == state_->num_keys());
  const std::size_t num_keys = load.counts.size();
  const auto nd = static_cast<std::size_t>(num_instances_);

  IntervalMetrics m;
  m.interval = interval_;
  m.instance_work.assign(nd, 0.0);
  std::vector<double> tuples(nd, 0.0);
  std::vector<double> paused_tuples_on(nd, 0.0);

  double total_tuples = 0.0;

  if (mode_ == RoutingMode::kShuffle) {
    // Key-oblivious spreading: work divides perfectly across instances.
    double total_work = 0.0;
    for (std::size_t k = 0; k < num_keys; ++k) {
      const auto n = load.counts[k];
      if (n == 0) continue;
      total_tuples += static_cast<double>(n);
      total_work += op_->batch_cost(
          static_cast<KeyId>(k), n,
          state_->windowed_state_of(static_cast<KeyId>(k)));
      state_->record(static_cast<KeyId>(k), 0.0,
                     op_->state_delta(static_cast<KeyId>(k), n), n);
    }
    for (std::size_t d = 0; d < nd; ++d) {
      m.instance_work[d] = total_work / static_cast<double>(nd);
      tuples[d] = total_tuples / static_cast<double>(nd);
    }
  } else if (mode_ == RoutingMode::kPkg) {
    // Two-choice split per key, in chunks, against the router's running
    // load estimates; merge stage adds CPU overhead.
    for (std::size_t k = 0; k < num_keys; ++k) {
      const auto n = load.counts[k];
      if (n == 0) continue;
      total_tuples += static_cast<double>(n);
      const Cost batch = op_->batch_cost(
          static_cast<KeyId>(k), n,
          state_->windowed_state_of(static_cast<KeyId>(k)));
      const Cost per_tuple = batch / static_cast<double>(n);
      std::uint64_t remaining = n;
      const std::uint64_t chunk = std::max<std::uint64_t>(1, n / 8);
      while (remaining > 0) {
        const std::uint64_t take = std::min(chunk, remaining);
        const InstanceId d = pkg_router_->route(
            static_cast<KeyId>(k), per_tuple * static_cast<double>(take));
        m.instance_work[static_cast<std::size_t>(d)] +=
            per_tuple * static_cast<double>(take) *
            (1.0 + config_.pkg_merge_overhead);
        tuples[static_cast<std::size_t>(d)] += static_cast<double>(take);
        remaining -= take;
      }
      state_->record(static_cast<KeyId>(k), batch,
                     op_->state_delta(static_cast<KeyId>(k), n), n);
    }
    pkg_router_->on_interval();
  } else {
    // Keyed routing: controller's F or plain hashing.
    for (std::size_t k = 0; k < num_keys; ++k) {
      const auto n = load.counts[k];
      if (n == 0) continue;
      total_tuples += static_cast<double>(n);
      const auto key = static_cast<KeyId>(k);
      InstanceId d;
      if (mode_ == RoutingMode::kController) {
        // While a plan is "being generated", tuples still route under the
        // frozen pre-plan assignment: the live assignment already has the
        // plan installed, so moved keys take their pre-plan destination
        // from the sparse override map.
        d = controller_->assignment()(key);
        if (override_remaining_ > 0) {
          if (const auto it = route_override_.find(key);
              it != route_override_.end()) {
            d = it->second;
          }
        }
      } else {
        d = hash_router_->route(key);
      }
      const auto di = static_cast<std::size_t>(d);
      const Cost batch =
          op_->batch_cost(key, n, state_->windowed_state_of(key));
      const Bytes delta = op_->state_delta(key, n);
      m.instance_work[di] += batch;
      tuples[di] += static_cast<double>(n);
      if (key_paused_[k]) paused_tuples_on[di] += static_cast<double>(n);
      state_->record(key, batch, delta, n, d);
      if (mode_ == RoutingMode::kController) {
        controller_->record(key, batch, delta, n, d);
      }
    }
  }

  // ---- Capacity after migration-pause debt.
  const auto interval_us = static_cast<double>(config_.interval_micros);
  std::vector<double> capacity(nd, interval_us);
  double max_consumed = 0.0;
  for (std::size_t d = 0; d < nd; ++d) {
    const auto consume =
        std::min<Micros>(pause_debt_[d], config_.interval_micros);
    pause_debt_[d] -= consume;
    capacity[d] -= static_cast<double>(consume);
    // Never let capacity hit zero — the instance still drains its queue
    // between protocol steps.
    capacity[d] = std::max(capacity[d], 0.02 * interval_us);
    max_consumed = std::max(max_consumed, static_cast<double>(consume));
  }

  // ---- Fluid queueing model.
  double rho_max = 0.0;
  double total_work = 0.0;
  for (std::size_t d = 0; d < nd; ++d) {
    rho_max = std::max(rho_max, m.instance_work[d] / capacity[d]);
    total_work += m.instance_work[d];
  }
  const double alpha = rho_max > 1.0 ? 1.0 / rho_max : 1.0;
  const double interval_sec = interval_us / 1e6;
  m.offered_tps = total_tuples / interval_sec;
  m.throughput_tps = alpha * total_tuples / interval_sec;

  double weighted_latency_us = 0.0;
  double latency_weight = 0.0;
  for (std::size_t d = 0; d < nd; ++d) {
    if (tuples[d] <= 0.0) continue;
    const double service = m.instance_work[d] / tuples[d];
    const double rho =
        std::min(alpha * m.instance_work[d] / capacity[d], config_.rho_cap);
    const double lat = service * (1.0 + rho / (2.0 * (1.0 - rho)));
    weighted_latency_us += tuples[d] * lat;
    latency_weight += tuples[d];
    // Tuples of keys under migration wait out (on average half) the pause.
    if (paused_tuples_on[d] > 0.0) {
      weighted_latency_us += paused_tuples_on[d] * 0.5 * max_consumed;
    }
  }
  double avg_latency_us =
      latency_weight > 0.0 ? weighted_latency_us / latency_weight : 0.0;
  if (rho_max > 1.0) {
    // Saturated: the backlog grows through the interval; average extra
    // wait is half of the unprocessed work time.
    avg_latency_us += 0.5 * (rho_max - 1.0) * interval_us;
  }
  if (mode_ == RoutingMode::kPkg) {
    avg_latency_us += static_cast<double>(config_.pkg_merge_latency_us);
  }
  m.avg_latency_ms = avg_latency_us / 1000.0;

  // ---- Balance indicators from the realized work distribution.
  const double avg_work = total_work / static_cast<double>(nd);
  if (avg_work > 0.0) {
    double max_work = 0.0;
    double max_dev = 0.0;
    for (const double w : m.instance_work) {
      max_work = std::max(max_work, w);
      max_dev = std::max(max_dev, std::abs(w - avg_work));
    }
    m.load_skewness = max_work / avg_work;
    m.max_theta = max_dev / avg_work;
  }

  // Pause latency is charged exactly once per migration.
  std::fill(key_paused_.begin(), key_paused_.end(), false);

  state_->roll();

  // ---- Rebalance machinery at the interval boundary (controller mode).
  if (mode_ == RoutingMode::kController) {
    if (override_remaining_ > 0) {
      // Plan still "being generated": keep the stats cadence, no re-plan.
      controller_->stats().roll();
      if (--override_remaining_ == 0) {
        // The plan lands now: execute the pause/migrate/resume protocol.
        std::vector<bool> involved(nd, false);
        for (const KeyMove& mv : pending_moves_) {
          involved[static_cast<std::size_t>(mv.from)] = true;
          involved[static_cast<std::size_t>(mv.to)] = true;
          key_paused_[static_cast<std::size_t>(mv.key)] = true;
        }
        for (std::size_t d = 0; d < nd; ++d) {
          if (involved[d]) pause_debt_[d] += pending_pause_;
        }
        pending_moves_.clear();
        pending_pause_ = 0;
        route_override_.clear();
      }
    } else if (auto plan = controller_->end_interval()) {
      m.migrated = true;
      m.migration_bytes = plan->migration_bytes;
      m.generation_micros = plan->generation_micros;
      m.table_size = plan->table_size;
      m.moves = plan->moves.size();
      const Bytes total_state = state_->total_windowed_state();
      m.migration_pct = total_state > 0.0
                            ? plan->migration_bytes / total_state * 100.0
                            : 0.0;

      const Micros pause =
          config_.migration_rtt_us +
          static_cast<Micros>(plan->migration_bytes /
                              config_.migration_bytes_per_sec * 1e6);
      const int delay_intervals =
          config_.charge_generation_time
              ? static_cast<int>(plan->generation_micros /
                                 config_.interval_micros)
              : 0;
      if (delay_intervals > 0) {
        // Routing stays on the pre-plan assignment until generation
        // "completes"; the migration pause is charged at landing time.
        // Only the moved keys differ from the installed assignment, so
        // the override is a sparse key -> old-destination map.
        route_override_.clear();
        for (const KeyMove& mv : plan->moves) {
          route_override_.emplace(mv.key, mv.from);
        }
        override_remaining_ = delay_intervals;
        pending_pause_ = pause;
        pending_moves_ = plan->moves;
      } else {
        std::vector<bool> involved(nd, false);
        for (const KeyMove& mv : plan->moves) {
          involved[static_cast<std::size_t>(mv.from)] = true;
          involved[static_cast<std::size_t>(mv.to)] = true;
          key_paused_[static_cast<std::size_t>(mv.key)] = true;
        }
        for (std::size_t d = 0; d < nd; ++d) {
          if (involved[d]) pause_debt_[d] += pause;
        }
      }
    }
  }

  ++interval_;
  return m;
}

std::vector<IntervalMetrics> SimEngine::run(int intervals) {
  std::vector<IntervalMetrics> out;
  out.reserve(static_cast<std::size_t>(intervals));
  for (int i = 0; i < intervals; ++i) out.push_back(step());
  return out;
}

}  // namespace skewless
