// Per-key operator state for the threaded engine.
//
// A stateful operator binds one KeyState to every active key (Section II:
// "a state is associated with an active key in the corresponding task").
// When a rebalance plan moves a key, its KeyState object migrates with it
// — the StateStore supports extraction/installation for exactly that.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/assert.h"
#include "common/types.h"
#include "common/serde.h"

namespace skewless {

class KeyState {
 public:
  virtual ~KeyState() = default;

  /// Current state footprint in bytes (drives S_i(k, w) statistics and
  /// migration cost accounting).
  [[nodiscard]] virtual Bytes bytes() const = 0;

  /// Order-insensitive content checksum; tests use it to prove that
  /// migrated and non-migrated runs compute identical states.
  [[nodiscard]] virtual std::uint64_t checksum() const = 0;

  /// Writes the full state content for migration over the wire. The
  /// owning OperatorLogic's deserialize_state() must reconstruct an
  /// equivalent state (equal checksum) from the bytes.
  virtual void serialize(ByteWriter& out) const = 0;

  /// Drops window content older than the watermark (no-op for
  /// non-windowed states).
  virtual void expire_before(Micros /*watermark*/) {}
};

/// Owning map from key to state, local to one task instance. Accessed
/// only from the owning worker thread while the engine runs.
class StateStore {
 public:
  /// Returns the state for `key`, creating it via `factory` on first use.
  template <typename Factory>
  KeyState& get_or_create(KeyId key, Factory&& factory) {
    auto it = states_.find(key);
    if (it == states_.end()) {
      it = states_.emplace(key, factory()).first;
      SKW_ASSERT(it->second != nullptr);
    }
    return *it->second;
  }

  [[nodiscard]] KeyState* find(KeyId key) {
    const auto it = states_.find(key);
    return it == states_.end() ? nullptr : it->second.get();
  }

  /// Removes and returns the state for `key` (nullptr if absent) — the
  /// extraction half of a migration.
  [[nodiscard]] std::unique_ptr<KeyState> extract(KeyId key) {
    const auto it = states_.find(key);
    if (it == states_.end()) return nullptr;
    auto state = std::move(it->second);
    states_.erase(it);
    return state;
  }

  /// Installs a migrated state. The key must not already be present —
  /// the pause protocol guarantees the destination never created one.
  void install(KeyId key, std::unique_ptr<KeyState> state) {
    SKW_EXPECTS(state != nullptr);
    const auto [it, inserted] = states_.emplace(key, std::move(state));
    SKW_EXPECTS(inserted);
    (void)it;
  }

  /// Installs a state, replacing any existing one. Only the net worker's
  /// checkpoint-restore path uses this: a restore payload is peer input,
  /// and reinstalling over a half-built store must not abort. Migration
  /// installs keep the strict install() contract.
  void install_or_replace(KeyId key, std::unique_ptr<KeyState> state) {
    SKW_EXPECTS(state != nullptr);
    states_[key] = std::move(state);
  }

  void clear() { states_.clear(); }

  void expire_before(Micros watermark) {
    for (auto& [key, state] : states_) state->expire_before(watermark);
  }

  [[nodiscard]] std::size_t size() const { return states_.size(); }

  [[nodiscard]] Bytes total_bytes() const {
    Bytes total = 0.0;
    for (const auto& [key, state] : states_) total += state->bytes();
    return total;
  }

  /// Sum of per-key checksums mixed with the key (order-insensitive).
  [[nodiscard]] std::uint64_t checksum() const;

  [[nodiscard]] const std::unordered_map<KeyId, std::unique_ptr<KeyState>>&
  states() const {
    return states_;
  }

 private:
  std::unordered_map<KeyId, std::unique_ptr<KeyState>> states_;
};

}  // namespace skewless
