// Byte-level serialization for migrating key state between task
// instances. The in-process engine could move KeyState pointers directly,
// but a distributed deployment ships bytes; round-tripping through this
// codec keeps the migration path honest (costs real bytes, loses nothing)
// and is what the migration-fidelity tests exercise.
//
// Format: little-endian, length-prefixed primitives. No versioning —
// state never outlives a run (the window bounds its lifetime).
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/assert.h"

namespace skewless {

/// Append-only byte sink.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { bytes_.push_back(v); }

  void u32(std::uint32_t v) { append_raw(&v, sizeof(v)); }
  void u64(std::uint64_t v) { append_raw(&v, sizeof(v)); }
  void i64(std::int64_t v) { append_raw(&v, sizeof(v)); }
  void f64(double v) { append_raw(&v, sizeof(v)); }

  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    append_raw(s.data(), s.size());
  }

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const {
    return bytes_;
  }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(bytes_); }
  [[nodiscard]] std::size_t size() const { return bytes_.size(); }

 private:
  void append_raw(const void* data, std::size_t n) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    bytes_.insert(bytes_.end(), p, p + n);
  }

  std::vector<std::uint8_t> bytes_;
};

/// Sequential byte source; aborts on overrun (corrupt migration payloads
/// must never be silently accepted).
class ByteReader {
 public:
  explicit ByteReader(const std::vector<std::uint8_t>& bytes)
      : data_(bytes.data()), size_(bytes.size()) {}
  ByteReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  std::uint8_t u8() {
    SKW_EXPECTS(pos_ + 1 <= size_);
    return data_[pos_++];
  }
  std::uint32_t u32() { return read_raw<std::uint32_t>(); }
  std::uint64_t u64() { return read_raw<std::uint64_t>(); }
  std::int64_t i64() { return read_raw<std::int64_t>(); }
  double f64() { return read_raw<double>(); }

  std::string str() {
    const std::uint32_t n = u32();
    SKW_EXPECTS(pos_ + n <= size_);
    std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return s;
  }

  [[nodiscard]] bool exhausted() const { return pos_ == size_; }
  [[nodiscard]] std::size_t remaining() const { return size_ - pos_; }

 private:
  template <typename T>
  T read_raw() {
    SKW_EXPECTS(pos_ + sizeof(T) <= size_);
    T v;
    std::memcpy(&v, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace skewless
