// Operator logic interface for the threaded engine.
//
// Logic objects are shared across worker threads and must be stateless —
// all mutable data lives in the per-key KeyState the worker passes in.
#pragma once

#include <memory>

#include "common/types.h"
#include "engine/state.h"
#include "engine/tuple.h"

namespace skewless {

/// Sink for tuples an operator emits downstream. The default engine
/// collector counts emissions; tests install recording collectors.
class Collector {
 public:
  virtual ~Collector() = default;
  virtual void emit(const Tuple& tuple) = 0;
};

class OperatorLogic {
 public:
  virtual ~OperatorLogic() = default;

  /// Creates the initial state for a newly seen key.
  [[nodiscard]] virtual std::unique_ptr<KeyState> make_state() const = 0;

  /// Reconstructs a migrated state from KeyState::serialize() output.
  [[nodiscard]] virtual std::unique_ptr<KeyState> deserialize_state(
      ByteReader& in) const = 0;

  /// Processes one tuple against its key's state, optionally emitting
  /// downstream tuples. Returns the tuple's computation-cost estimate in
  /// micros (the c_i(k) contribution reported to the controller).
  /// Must be const / thread-safe: one logic instance serves all workers.
  virtual Cost process(const Tuple& tuple, KeyState& state,
                       Collector& out) const = 0;
};

}  // namespace skewless
