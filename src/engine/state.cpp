#include "engine/state.h"

#include "common/hash.h"

namespace skewless {

std::uint64_t StateStore::checksum() const {
  std::uint64_t acc = 0;
  for (const auto& [key, state] : states_) {
    // Commutative mix so iteration order (and therefore key placement
    // across workers) does not matter.
    acc += mix64(key ^ state->checksum());
  }
  return acc;
}

}  // namespace skewless
