// Virtual-time simulation driver for one keyed operator (upstream router
// -> N_D downstream task instances).
//
// Why a simulator: the paper's evaluation ran on a 21-node Storm cluster;
// we reproduce the *shape* of its end-to-end results on one machine. The
// rebalance algorithms only interact with the engine through per-interval
// statistics and the routing function, so a deterministic fluid queueing
// model of the data plane preserves everything that matters:
//
//  * per-instance work  W(d) = Σ_{F(k)=d} batch_cost(k) per interval,
//  * backpressure: the spout is throttled by the most loaded instance
//    (admitted fraction α = min(1, capacity/W_max)) — the Fig. 1 effect,
//  * M/D/1-style queueing latency per instance, weighted by tuple counts,
//  * the pause/migrate/resume protocol of Fig. 5: migrating keys reduces
//    the capacity of participating instances by the pause time
//    (signalling RTT + state bytes / bandwidth + plan generation time),
//    and delays tuples of the affected keys,
//  * PKG's split-key routing with its downstream merge stage overheads.
//
// Determinism: all inputs are interval count vectors and the model is
// closed-form per interval, so runs are bit-for-bit reproducible.
#pragma once

#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "baselines/router.h"
#include "common/types.h"
#include "core/controller.h"
#include "core/stats_window.h"
#include "engine/sim_operator.h"
#include "engine/workload_source.h"

namespace skewless {

enum class RoutingMode {
  kController,  // AssignmentFunction managed by a rebalance Controller
  kHashOnly,    // plain consistent hashing ("Storm" baseline)
  kShuffle,     // key-oblivious round robin ("Ideal" bound)
  kPkg,         // Partial Key Grouping with merge stage
};

struct SimConfig {
  Micros interval_micros = 1'000'000;  // T_i length (1 virtual second)
  InstanceId num_instances = 10;
  /// Extra CPU fraction PKG pays downstream for partial-result merging.
  double pkg_merge_overhead = 0.10;
  /// Latency added by PKG's merge period p (the paper used p = 10 ms).
  Micros pkg_merge_latency_us = 10'000;
  /// State migration bandwidth between instances.
  double migration_bytes_per_sec = 200.0 * 1024 * 1024;
  /// Pause/resume signalling cost per migration (steps 3-7 of Fig. 5).
  Micros migration_rtt_us = 2'000;
  /// Whether plan-generation time delays plan installation: while the
  /// controller computes (Fig. 5 step 2), tuples keep flowing under the
  /// old assignment, so a slow planner (Readj's multi-second searches)
  /// leaves the system imbalanced for ⌈generation/interval⌉ intervals.
  bool charge_generation_time = true;
  /// Utilization cap in the latency formula (avoids the 1/(1−ρ) pole).
  double rho_cap = 0.98;
  /// w — sliding-window length (intervals) for the engine's own state
  /// tracker in router modes; controller mode inherits the controller's.
  int state_window = 1;
  /// Storage for the engine's own per-key state tracker: exact dense
  /// vectors or the sketch provider (million-key domains). The
  /// controller keeps its own provider per ControllerConfig::stats_mode.
  StatsMode stats_mode = StatsMode::kExact;
  /// Tuning for stats_mode == kSketch.
  SketchStatsConfig sketch = {};
};

struct IntervalMetrics {
  IntervalId interval = 0;
  double offered_tps = 0.0;
  double throughput_tps = 0.0;
  double avg_latency_ms = 0.0;
  /// max_d L(d) / L̄ — the paper's "workload skewness".
  double load_skewness = 1.0;
  /// max_d θ(d) (imbalance indicator).
  double max_theta = 0.0;
  std::vector<double> instance_work;  // micros of work per instance
  bool migrated = false;
  Bytes migration_bytes = 0.0;
  double migration_pct = 0.0;  // bytes / total windowed state
  Micros generation_micros = 0;
  std::size_t table_size = 0;
  std::size_t moves = 0;
};

class SimEngine {
 public:
  /// Controller mode: `controller` drives routing and rebalancing.
  SimEngine(SimConfig config, std::unique_ptr<SimOperator> op,
            std::unique_ptr<WorkloadSource> source,
            std::unique_ptr<Controller> controller);

  /// Router modes (hash / shuffle / pkg): no controller involved.
  SimEngine(SimConfig config, std::unique_ptr<SimOperator> op,
            std::unique_ptr<WorkloadSource> source, RoutingMode mode);

  /// Advances one interval and returns its metrics.
  IntervalMetrics step();

  /// Runs `intervals` steps, returning all metrics.
  std::vector<IntervalMetrics> run(int intervals);

  /// Scale-out: adds one downstream instance (takes effect next interval).
  void add_instance();

  [[nodiscard]] Controller* controller() { return controller_.get(); }
  [[nodiscard]] const SimConfig& config() const { return config_; }
  [[nodiscard]] InstanceId num_instances() const { return num_instances_; }
  [[nodiscard]] const StatsProvider& state_tracker() const { return *state_; }

 private:
  void route_interval(const IntervalWorkload& load,
                      std::vector<InstanceId>& dest,
                      std::vector<double>& split_fraction);
  [[nodiscard]] RoutingMode mode() const { return mode_; }

  SimConfig config_;
  std::unique_ptr<SimOperator> op_;
  std::unique_ptr<WorkloadSource> source_;
  std::unique_ptr<Controller> controller_;
  RoutingMode mode_;
  InstanceId num_instances_;

  // Non-controller routers.
  std::optional<HashRouter> hash_router_;
  std::optional<ShuffleRouter> shuffle_router_;
  std::optional<PkgRouter> pkg_router_;

  // Windowed per-key state tracking for batch_cost and migration sizes
  // (the controller keeps its own copy for planning; this one feeds the
  // cost model in every mode). Exact or sketch per SimConfig::stats_mode.
  std::unique_ptr<StatsProvider> state_;

  // Pause bookkeeping: capacity debt (micros) per instance from the most
  // recent migration, consumed over subsequent intervals.
  std::vector<Micros> pause_debt_;
  // Keys currently affected by an in-flight migration (their tuples see
  // added latency while the pause drains).
  std::vector<bool> key_paused_;

  // Generation-delay bookkeeping: while a plan is being "computed", the
  // engine routes with the frozen pre-plan assignment and the controller
  // does not re-plan. The frozen assignment differs from the (already
  // installed) live one only on the plan's moved keys, so a sparse
  // key -> pre-plan-destination map suffices — no dense O(|K|) copy.
  std::unordered_map<KeyId, InstanceId> route_override_;
  int override_remaining_ = 0;
  Micros pending_pause_ = 0;
  std::vector<KeyMove> pending_moves_;

  IntervalId interval_ = 0;
};

}  // namespace skewless
