#include "engine/sim_pipeline.h"

#include <algorithm>

#include "common/assert.h"

namespace skewless {

SimPipeline::SimPipeline(std::vector<std::unique_ptr<SimEngine>> stages)
    : stages_(std::move(stages)) {
  SKW_EXPECTS(!stages_.empty());
  for (const auto& s : stages_) SKW_EXPECTS(s != nullptr);
}

PipelineMetrics SimPipeline::step() {
  PipelineMetrics pm;
  pm.interval = interval_++;
  pm.stages.reserve(stages_.size());

  double min_alpha = 1.0;
  for (std::size_t i = 0; i < stages_.size(); ++i) {
    IntervalMetrics sm = stages_[i]->step();
    const double alpha =
        sm.offered_tps > 0.0 ? sm.throughput_tps / sm.offered_tps : 1.0;
    if (alpha < min_alpha) {
      min_alpha = alpha;
      pm.bottleneck_stage = i;
    }
    pm.end_to_end_latency_ms += sm.avg_latency_ms;
    if (i == 0) pm.offered_tps = sm.offered_tps;
    pm.stages.push_back(std::move(sm));
  }
  pm.throughput_tps = pm.offered_tps * min_alpha;
  return pm;
}

std::vector<PipelineMetrics> SimPipeline::run(int intervals) {
  std::vector<PipelineMetrics> out;
  out.reserve(static_cast<std::size_t>(intervals));
  for (int i = 0; i < intervals; ++i) out.push_back(step());
  return out;
}

}  // namespace skewless
