// Real multi-threaded single-operator engine: a driver (spout + router +
// controller host) feeding N worker threads over bounded queues.
//
// This driver exists to prove the protocol end to end with real threads,
// real queues and real state objects — the examples and integration tests
// run on it. The figure benches use the deterministic SimEngine instead.
//
// Migration protocol (Fig. 5), mapped onto queue FIFO ordering:
//   1. the controller decides a plan at an interval boundary;
//   2. the driver routes no tuples while it pushes one Extract control
//      message per source worker — every tuple sent earlier is ahead of
//      the Extract in that worker's FIFO queue, so extraction sees the
//      fully up-to-date state;
//   3. workers reply with the extracted KeyState objects through the
//      migration mailbox;
//   4. the driver pushes Install messages to the destination workers and
//      only then resumes routing with the new assignment — any tuple
//      routed afterwards sits behind the Install in the destination's
//      FIFO queue, so it can never observe a missing state.
// Keys not involved in ∆(F, F') keep flowing the whole time.
//
// Statistics contract (worker ↔ driver):
//   * exact mode — workers aggregate per batch into a private map, merge
//     it into a mutex-guarded shared map, and the driver swaps those out
//     at interval boundaries and replays them into the provider. O(|K|)
//     hash traffic crosses threads each interval.
//   * sketch mode — each worker owns a thread-local WorkerSketchSlab
//     (Count-Min sketches + Space-Saving candidates + exact hot-key map
//     for the current heavy set). The driver merges the slabs into the
//     SketchStatsWindow at the interval boundary (cell-wise add_sketch,
//     candidate union, one promotion pass in roll) in worker-index
//     order, so results are byte-identical regardless of worker finish
//     order. No per-key hash traffic crosses threads on the data path.
#pragma once

#include <atomic>
#include <memory>
#include <optional>
#include <thread>
#include <unordered_map>
#include <variant>
#include <vector>

#include "common/consistent_hash.h"
#include "common/queue.h"
#include "common/types.h"
#include "core/controller.h"
#include "engine/operator.h"
#include "engine/state.h"
#include "engine/tuple.h"
#include "engine/workload_source.h"
#include "sketch/sketch_stats_window.h"
#include "sketch/worker_sketch_slab.h"

namespace skewless {

struct ThreadedConfig {
  InstanceId num_workers = 4;
  /// Tuples per Batch message (amortizes queue locking).
  std::size_t batch_size = 256;
  /// Batches a worker queue holds before the driver blocks (backpressure).
  std::size_t queue_capacity = 64;
  /// Window expiry watermark lag, in intervals (0 = no expiry messages).
  int expire_lag_intervals = 0;
  /// If true, migrated states round-trip through the byte codec
  /// (KeyState::serialize -> OperatorLogic::deserialize_state), as a
  /// distributed deployment would ship them. Costs CPU, proves fidelity,
  /// and fills ThreadedIntervalReport::migration_wire_bytes.
  bool serialize_migration = false;
  /// Storage for the engine-side statistics monitor that hash-only mode
  /// keeps (there is no controller to hold one). In controller mode the
  /// controller's provider — configured via ControllerConfig — is the
  /// single statistics store and this field is unused.
  StatsMode stats_mode = StatsMode::kExact;
  /// Tuning for stats_mode == kSketch.
  SketchStatsConfig sketch = {};
};

struct ThreadedIntervalReport {
  IntervalId interval = 0;
  std::uint64_t emitted = 0;
  std::uint64_t processed = 0;
  double wall_ms = 0.0;
  double throughput_tps = 0.0;
  double avg_latency_ms = 0.0;
  double max_theta = 0.0;
  bool migrated = false;
  std::size_t moves = 0;
  Bytes migration_bytes = 0.0;
  /// Actual serialized payload shipped during migration (only when
  /// ThreadedConfig::serialize_migration is set).
  Bytes migration_wire_bytes = 0.0;
  Micros generation_micros = 0;
  /// Resident bytes of ALL statistics structures on the engine: the
  /// provider (controller's in controller mode, the engine monitor in
  /// hash-only mode) plus the per-worker accumulators — sketch slabs in
  /// sketch mode, the shared per-key maps and drain scratch in exact
  /// mode. This is the end-to-end number the exact-vs-sketch memory
  /// trade-off is about.
  std::size_t stats_memory_bytes = 0;
};

class ThreadedEngine {
 public:
  /// Controller mode: the controller's AssignmentFunction routes tuples
  /// and its planner rebalances at interval boundaries.
  ThreadedEngine(ThreadedConfig config, std::shared_ptr<OperatorLogic> logic,
                 std::unique_ptr<Controller> controller);

  /// Hash-only mode (the "Storm" baseline): consistent hashing, no
  /// controller, no migration.
  ThreadedEngine(ThreadedConfig config, std::shared_ptr<OperatorLogic> logic,
                 InstanceId num_workers_for_ring, std::uint64_t ring_seed);

  ~ThreadedEngine();

  ThreadedEngine(const ThreadedEngine&) = delete;
  ThreadedEngine& operator=(const ThreadedEngine&) = delete;

  /// Processes `intervals` intervals from `source` (counts are expanded
  /// into a deterministic shuffled tuple sequence with `seed`).
  std::vector<ThreadedIntervalReport> run(WorkloadSource& source,
                                          int intervals,
                                          std::uint64_t seed = 1);

  /// Processes an explicit tuple sequence as one interval.
  ThreadedIntervalReport run_interval(const std::vector<Tuple>& tuples);

  /// Stops and joins the workers; further run() calls are invalid.
  /// Called automatically by the destructor.
  void shutdown();

  /// Valid after shutdown(): combined order-insensitive checksum over all
  /// workers' states — equal across runs regardless of key placement.
  [[nodiscard]] std::uint64_t state_checksum() const;

  /// Valid after shutdown(): number of distinct keys with live state.
  [[nodiscard]] std::size_t total_state_entries() const;

  [[nodiscard]] Controller* controller() { return controller_.get(); }

  /// The per-key statistics view: the controller's provider in
  /// controller mode, the engine-side monitor (rolled once per
  /// interval, per ThreadedConfig::stats_mode) in hash-only mode.
  [[nodiscard]] const StatsProvider& state_tracker() const {
    return controller_ ? controller_->stats() : *monitor_;
  }

  [[nodiscard]] std::uint64_t total_emitted() const {
    return total_emitted_;
  }
  [[nodiscard]] std::uint64_t total_processed() const {
    return total_processed_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t total_output_tuples() const {
    return total_outputs_.load(std::memory_order_relaxed);
  }

 private:
  struct BatchMsg {
    std::vector<Tuple> tuples;
  };
  struct ExtractMsg {
    std::vector<KeyId> keys;
  };
  struct InstallMsg {
    std::vector<std::pair<KeyId, std::unique_ptr<KeyState>>> states;
  };
  struct ExpireMsg {
    Micros watermark;
  };
  struct StopMsg {};
  using WorkerMsg =
      std::variant<BatchMsg, ExtractMsg, InstallMsg, ExpireMsg, StopMsg>;

  struct ExtractedState {
    KeyId key = 0;
    InstanceId from = 0;
    std::unique_ptr<KeyState> state;  // nullptr if the key had no state yet
  };

  /// Per-key accumulation for one interval on one worker.
  struct PerKeyStat {
    double cost = 0.0;
    double bytes = 0.0;
    std::uint64_t count = 0;
  };

  /// Per-worker statistics shared with the driver. Scalars are
  /// mutex-guarded (one uncontended lock per batch). The per-key channel
  /// depends on the stats mode:
  ///
  ///  * EXACT — the per_key map, merged under the mutex per batch and
  ///    swapped out by the driver at interval boundaries against a
  ///    cleared scratch map that keeps its buckets, so steady-state
  ///    intervals do no hash-table allocation on the hot path.
  ///  * SKETCH — the worker writes its WorkerSketchSlab (see slabs_)
  ///    with NO lock at all: the driver only reads a slab after the
  ///    quiescence wait in run_interval (done_msgs observed equal, with
  ///    acquire ordering, to the driver's own push count), which orders
  ///    every worker write before the driver's boundary merge. No
  ///    per-key hash traffic crosses threads.
  struct WorkerStats {
    std::mutex mu;
    std::unordered_map<KeyId, PerKeyStat> per_key;
    std::uint64_t processed = 0;
    double latency_sum_us = 0.0;
    std::uint64_t latency_samples = 0;
    /// Messages fully handled by the worker, incremented with release
    /// ordering only AFTER all the message's effects (state mutations,
    /// slab writes, stats updates) are complete. The driver is the only
    /// producer, so `done_msgs == pushed_msgs_[w]` observed with acquire
    /// is gap-free quiescence: a popped-but-unfinished message keeps the
    /// counts unequal. (A busy *flag* set after pop() would leave a
    /// window where the queue is empty and the flag not yet raised.)
    std::atomic<std::uint64_t> done_msgs{0};
  };

  void start_workers();
  void worker_loop(InstanceId id);
  void route_tuple(Tuple tuple);
  void flush_batches();
  void flush_batch(InstanceId d);
  /// Returns the serialized payload size (0 when serialization is off).
  Bytes execute_migration(const RebalancePlan& plan);
  void drain_worker_stats(ThreadedIntervalReport& report);
  /// Pushes the sketch window's post-roll heavy set into every worker
  /// slab (sketch mode only; workers must be quiescent).
  void refresh_worker_heavy_sets();
  [[nodiscard]] InstanceId route_of(KeyId key) const;

  ThreadedConfig config_;
  std::shared_ptr<OperatorLogic> logic_;
  std::unique_ptr<Controller> controller_;
  std::optional<ConsistentHashRing> hash_ring_;  // hash-only mode
  InstanceId num_workers_;

  std::vector<std::unique_ptr<BoundedMpmcQueue<WorkerMsg>>> queues_;
  std::vector<std::unique_ptr<StateStore>> stores_;
  std::vector<std::unique_ptr<WorkerStats>> stats_;
  /// Messages the driver has pushed to each worker (driver-owned; the
  /// quiescence wait compares it against WorkerStats::done_msgs).
  /// StopMsg is deliberately uncounted — nothing waits after shutdown.
  std::vector<std::uint64_t> pushed_msgs_;
  /// Driver-side scratch maps swapped against WorkerStats::per_key at
  /// each drain (cleared with buckets retained — no per-interval rebuild).
  std::vector<std::unordered_map<KeyId, PerKeyStat>> drain_scratch_;
  std::unique_ptr<StatsProvider> monitor_;  // hash-only mode, else null
  /// The provider downcast to its sketch form when stats_mode == kSketch
  /// (whether owned by the controller or by monitor_); null in exact
  /// mode. Non-null switches the worker↔driver statistics contract to
  /// thread-local slabs + boundary merge.
  SketchStatsWindow* sketch_sink_ = nullptr;
  /// One thread-local slab per worker (sketch mode only, else empty).
  std::vector<std::unique_ptr<WorkerSketchSlab>> slabs_;
  BoundedMpmcQueue<ExtractedState> migration_mailbox_;
  std::vector<std::thread> workers_;
  std::vector<std::vector<Tuple>> pending_batches_;

  std::atomic<std::uint64_t> total_processed_{0};
  std::atomic<std::uint64_t> total_outputs_{0};
  std::uint64_t total_emitted_ = 0;
  IntervalId interval_ = 0;
  Micros engine_epoch_us_ = 0;
  bool stopped_ = false;
};

}  // namespace skewless
