// Real multi-threaded single-operator engine: a driver (spout + router +
// controller host) feeding N worker threads over bounded queues.
//
// This driver exists to prove the protocol end to end with real threads,
// real queues and real state objects — the examples and integration tests
// run on it. The figure benches use the deterministic SimEngine instead.
//
// Migration protocol (Fig. 5), mapped onto queue FIFO ordering:
//   1. the controller decides a plan at an interval boundary;
//   2. the driver routes no tuples while it pushes one Extract control
//      message per source worker — every tuple sent earlier is ahead of
//      the Extract in that worker's FIFO queue, so extraction sees the
//      fully up-to-date state;
//   3. workers reply with the extracted KeyState objects through the
//      migration mailbox;
//   4. the driver pushes Install messages to the destination workers and
//      only then resumes routing with the new assignment — any tuple
//      routed afterwards sits behind the Install in the destination's
//      FIFO queue, so it can never observe a missing state.
// Keys not involved in ∆(F, F') keep flowing the whole time.
//
// Statistics contract (worker ↔ driver):
//   * exact mode — workers aggregate per batch into a private map, merge
//     it into a mutex-guarded shared map, and the driver swaps those out
//     at interval boundaries and replays them into the provider. O(|K|)
//     hash traffic crosses threads each interval.
//   * sketch mode — each worker owns thread-local WorkerSketchSlabs
//     (Count-Min sketches + Misra-Gries candidates + exact hot-key map
//     for the current heavy set) that are merged into the
//     SketchStatsWindow at the interval boundary in worker-index order,
//     so results are byte-identical regardless of worker finish order.
//     No per-key hash traffic crosses threads on the data path.
//
// Seal protocol (sketch mode, ThreadedConfig::async_merge — the
// asynchronous boundary merge): each worker owns a PAIR of slabs. At the
// boundary the driver pushes one lightweight SealMsg per worker and
// immediately returns to ingesting — the stall shrinks from the full
// quiesce-and-merge to the seal pushes. Each worker, on reaching its
// SealMsg (FIFO: after every batch of the closing epoch), stamps the
// active slab with the epoch, release-publishes it through
// SlabPair::sealed_epoch, swaps onto the other buffer, and then waits for
// the NEW heavy set (epoch-stamped, published after the merge path rolls
// the window) before touching the next epoch's batches — which is what
// keeps double-buffered runs byte-identical to the inline merge: every
// slab accumulates under exactly the heavy set the inline schedule would
// have installed. A driver-side merge thread absorbs the sealed slabs in
// worker-index order while the next interval's tuples are generated and
// queued; the merge input is exactly the sealed epoch regardless of
// scheduling, so the merged window state is schedule-independent too.
// With async_merge off the PR-3 inline protocol (gap-free quiescence
// wait + driver-side absorb) runs unchanged and is the determinism
// baseline the double-buffer path is tested against.
#pragma once

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <variant>
#include <vector>

#include "common/consistent_hash.h"
#include "common/queue.h"
#include "common/types.h"
#include "core/controller.h"
#include "engine/operator.h"
#include "engine/state.h"
#include "engine/tuple.h"
#include "engine/workload_source.h"
#include "sketch/sharded_worker_slab.h"
#include "sketch/sketch_stats_window.h"
#include "sketch/slab_sink.h"
#include "sketch/worker_sketch_slab.h"

namespace skewless {

struct ThreadedConfig {
  InstanceId num_workers = 4;
  /// Tuples per Batch message (amortizes queue locking).
  std::size_t batch_size = 256;
  /// Batches a worker queue holds before the driver blocks (backpressure).
  std::size_t queue_capacity = 64;
  /// Window expiry watermark lag, in intervals (0 = no expiry messages).
  int expire_lag_intervals = 0;
  /// If true, migrated states round-trip through the byte codec
  /// (KeyState::serialize -> OperatorLogic::deserialize_state), as a
  /// distributed deployment would ship them. Costs CPU, proves fidelity,
  /// and fills ThreadedIntervalReport::migration_wire_bytes.
  bool serialize_migration = false;
  /// Storage for the engine-side statistics monitor that hash-only mode
  /// keeps (there is no controller to hold one). In controller mode the
  /// controller's provider — configured via ControllerConfig — is the
  /// single statistics store and this field is unused.
  StatsMode stats_mode = StatsMode::kExact;
  /// Tuning for stats_mode == kSketch.
  SketchStatsConfig sketch = {};
  /// Sketch mode only: double-buffer each worker's slab and absorb the
  /// sealed buffers on a merge thread that overlaps the next interval's
  /// tuple flow (see the seal protocol in the header comment). Off =
  /// the inline boundary merge (full quiescence wait + driver-side
  /// absorb), kept as the byte-identical determinism baseline and the
  /// stall_ms A/B reference. Exact mode ignores this flag.
  bool async_merge = true;
  /// Pin worker w to the w-th CPU of the topology-aware pin order (one
  /// CPU per distinct physical core first, SMT siblings only after every
  /// core carries a worker — see cpu_topology()) where the platform
  /// supports it (pthread_setaffinity_np), so each worker's slab pair
  /// stays resident in its owner's private L2 instead of migrating
  /// between cores with the thread, and two workers never share a core's
  /// execution ports while whole cores sit idle. The merge thread takes
  /// the slot after the last worker. No-op elsewhere; see
  /// ThreadedEngine::pinned_workers() for how many pins took effect.
  bool pin_workers = false;
};

struct ThreadedIntervalReport {
  IntervalId interval = 0;
  std::uint64_t emitted = 0;
  std::uint64_t processed = 0;
  double wall_ms = 0.0;
  double throughput_tps = 0.0;
  double avg_latency_ms = 0.0;
  double max_theta = 0.0;
  bool migrated = false;
  std::size_t moves = 0;
  Bytes migration_bytes = 0.0;
  /// Actual serialized payload shipped during migration (only when
  /// ThreadedConfig::serialize_migration is set).
  Bytes migration_wire_bytes = 0.0;
  Micros generation_micros = 0;
  /// Resident bytes of ALL statistics structures on the engine: the
  /// provider (controller's in controller mode, the engine monitor in
  /// hash-only mode) plus the per-worker accumulators — sketch slabs
  /// (both buffers of each pair in double-buffered mode) in sketch mode,
  /// the shared per-key maps and drain scratch in exact mode. This is
  /// the end-to-end number the exact-vs-sketch memory trade-off is
  /// about.
  std::size_t stats_memory_bytes = 0;
  /// Time the driver's tuple ingestion was blocked by this interval's
  /// boundary: everything between the last tuple of this interval and
  /// being ready to route the next one, minus any overlap window run()
  /// spends generating the next interval's tuples. Inline merge: the
  /// whole quiesce + absorb + roll + plan sequence. Async merge: the
  /// seal pushes plus whatever merge/plan work had not finished by
  /// harvest time.
  double stall_ms = 0.0;
  /// Time spent absorbing worker statistics into the provider — slab
  /// absorbs on the merge path in sketch mode, the per-key replay under
  /// the drain locks in exact mode — so exact mode's per-drain cost is
  /// visible in the same place.
  double merge_ms = 0.0;
};

class ThreadedEngine {
 public:
  /// Controller mode: the controller's AssignmentFunction routes tuples
  /// and its planner rebalances at interval boundaries.
  ThreadedEngine(ThreadedConfig config, std::shared_ptr<OperatorLogic> logic,
                 std::unique_ptr<Controller> controller);

  /// Hash-only mode (the "Storm" baseline): consistent hashing, no
  /// controller, no migration.
  ThreadedEngine(ThreadedConfig config, std::shared_ptr<OperatorLogic> logic,
                 InstanceId num_workers_for_ring, std::uint64_t ring_seed);

  ~ThreadedEngine();

  ThreadedEngine(const ThreadedEngine&) = delete;
  ThreadedEngine& operator=(const ThreadedEngine&) = delete;

  /// Processes `intervals` intervals from `source` (counts are expanded
  /// into a deterministic shuffled tuple sequence with `seed`). With the
  /// asynchronous boundary merge enabled, the next interval's tuple
  /// expansion overlaps the previous boundary's slab merge — the
  /// pipelining run_interval's one-shot API cannot express.
  std::vector<ThreadedIntervalReport> run(WorkloadSource& source,
                                          int intervals,
                                          std::uint64_t seed = 1);

  /// Processes an explicit tuple sequence as one interval. Uses the same
  /// seal/merge protocol as run() but completes the boundary before
  /// returning (no overlap window), so the merged statistics are fully
  /// visible to the caller — and byte-identical to the inline merge.
  ThreadedIntervalReport run_interval(const std::vector<Tuple>& tuples);

  /// Stops and joins the workers; further run() calls are invalid.
  /// Called automatically by the destructor.
  void shutdown();

  /// Valid after shutdown(): combined order-insensitive checksum over all
  /// workers' states — equal across runs regardless of key placement.
  [[nodiscard]] std::uint64_t state_checksum() const;

  /// Valid after shutdown(): number of distinct keys with live state.
  [[nodiscard]] std::size_t total_state_entries() const;

  [[nodiscard]] Controller* controller() { return controller_.get(); }

  /// The per-key statistics view: the controller's provider in
  /// controller mode, the engine-side monitor (rolled once per
  /// interval, per ThreadedConfig::stats_mode) in hash-only mode.
  [[nodiscard]] const StatsProvider& state_tracker() const {
    return controller_ ? controller_->stats() : *monitor_;
  }

  /// Number of workers whose core pin (ThreadedConfig::pin_workers) took
  /// effect — 0 when pinning is off or unsupported on this platform.
  [[nodiscard]] InstanceId pinned_workers() const { return pinned_workers_; }

  [[nodiscard]] std::uint64_t total_emitted() const {
    return total_emitted_;
  }
  [[nodiscard]] std::uint64_t total_processed() const {
    return total_processed_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t total_output_tuples() const {
    return total_outputs_.load(std::memory_order_relaxed);
  }

 private:
  struct BatchMsg {
    std::vector<Tuple> tuples;
  };
  struct ExtractMsg {
    std::vector<KeyId> keys;
  };
  struct InstallMsg {
    std::vector<std::pair<KeyId, std::unique_ptr<KeyState>>> states;
  };
  struct ExpireMsg {
    Micros watermark;
  };
  /// Interval-boundary seal (sketch mode, async_merge): the worker
  /// stamps + publishes its active slab as `epoch`'s sealed buffer,
  /// swaps onto the other one, and installs the epoch's new heavy set
  /// before processing anything that follows. FIFO ordering guarantees
  /// every batch of the closing epoch is ahead of the seal.
  struct SealMsg {
    std::uint64_t epoch;
  };
  struct StopMsg {};
  using WorkerMsg = std::variant<BatchMsg, ExtractMsg, InstallMsg, ExpireMsg,
                                 SealMsg, StopMsg>;

  struct ExtractedState {
    KeyId key = 0;
    InstanceId from = 0;
    std::unique_ptr<KeyState> state;  // nullptr if the key had no state yet
  };

  /// Per-key accumulation for one batch/interval on one worker — the
  /// slab's exact-aggregation struct, reused so a batch's scratch map
  /// can be handed to WorkerSketchSlab::add_batch wholesale.
  using PerKeyStat = WorkerSketchSlab::KeyAgg;

  /// Per-worker statistics shared with the driver. The channel depends
  /// on the stats mode:
  ///
  ///  * EXACT — the per_key map AND the scalar counters, merged under
  ///    the mutex per batch (one uncontended lock) and swapped out by
  ///    the driver at interval boundaries against a cleared scratch map
  ///    that keeps its buckets, so steady-state intervals do no
  ///    hash-table allocation on the hot path.
  ///  * SKETCH — the worker writes its WorkerSketchSlab (per-key AND
  ///    scalar counters — see WorkerSketchSlab::IntervalScalars) with NO
  ///    lock at all: the merge path only reads a slab after it was
  ///    published — by the quiescence wait (inline merge: done_msgs
  ///    observed equal, with acquire ordering, to the driver's push
  ///    count) or by the seal (async merge: sealed_epoch acquired) —
  ///    which orders every worker write before the read. No per-key
  ///    hash traffic and no lock on the data path.
  struct WorkerStats {
    std::mutex mu;
    std::unordered_map<KeyId, PerKeyStat> per_key;
    std::uint64_t processed = 0;
    double latency_sum_us = 0.0;
    std::uint64_t latency_samples = 0;
    /// Messages fully handled by the worker, incremented with release
    /// ordering only AFTER all the message's effects (state mutations,
    /// slab writes, stats updates) are complete. The driver is the only
    /// producer, so `done_msgs == pushed_msgs_[w]` observed with acquire
    /// is gap-free quiescence: a popped-but-unfinished message keeps the
    /// counts unequal. (A busy *flag* set after pop() would leave a
    /// window where the queue is empty and the flag not yet raised.)
    std::atomic<std::uint64_t> done_msgs{0};
  };

  /// Double-buffered slab pair (sketch mode). The worker writes the
  /// active buffer exclusively; sealed_epoch release-publishes the other
  /// one to the merge path. Which buffer is sealed at epoch e is a pure
  /// function of e (buffer (e-1)&1 — the worker starts on buffer 0 and
  /// alternates), so neither side needs to share an index. With
  /// async_merge off only buffer 0 exists and is never sealed.
  struct SlabPair {
    std::unique_ptr<ShardedWorkerSlab> bufs[2];
    std::atomic<std::uint64_t> sealed_epoch{0};
  };

  /// Everything the merge path harvests for one sealed epoch; handed to
  /// the driver under merge_mu_ when the epoch completes.
  struct BoundaryResult {
    std::uint64_t processed = 0;
    double latency_sum_us = 0.0;
    std::uint64_t latency_samples = 0;
    double max_theta = 0.0;
    double merge_ms = 0.0;
    std::size_t slab_memory_bytes = 0;
    std::size_t provider_memory_bytes = 0;  // hash-only mode: post-roll
  };

  void start_workers();
  void worker_loop(InstanceId id);
  void merge_loop();
  /// Routes a chunk of tuples with ONE batched assignment evaluation
  /// (vectorized hash over the routing-table misses) and stamps each
  /// tuple's emit time as it lands in its pending batch.
  void route_chunk(const Tuple* tuples, std::size_t n);
  void flush_batches();
  void flush_batch(InstanceId d);
  /// Returns the serialized payload size (0 when serialization is off).
  Bytes execute_migration(const RebalancePlan& plan);
  void drain_worker_stats(ThreadedIntervalReport& report);
  /// Absorbs every worker's sealed slab for `epoch` in worker-index
  /// order (waiting for stragglers to seal), filling `result`. Runs on
  /// the merge thread.
  void merge_sealed_slabs(std::uint64_t epoch, BoundaryResult& result);
  /// Pushes the sketch window's post-roll heavy set into every worker
  /// slab (inline merge only; workers must be quiescent).
  void refresh_worker_heavy_sets();
  /// Epoch-stamped release-publish of the post-roll heavy set; sealed
  /// workers waiting at their SealMsg barrier install it and resume.
  void publish_heavy_set(std::uint64_t epoch);
  /// Routes `tuples` as the open interval's stream (wall_ms accumulates
  /// the routing segment only).
  ThreadedIntervalReport ingest(const std::vector<Tuple>& tuples);
  /// Starts the interval boundary: async merge pushes the seals and
  /// hands the epoch to the merge thread; inline/exact modes do nothing
  /// yet. Between begin and finish the caller may overlap driver-side
  /// work (run() expands the next interval's tuples there) — but must
  /// not route tuples or touch statistics.
  void begin_boundary(ThreadedIntervalReport& report);
  /// Completes the boundary: harvests the merge (waiting if it has not
  /// caught up), rolls/plans/migrates, publishes the heavy set, and
  /// finalizes the report's wall/stall/throughput numbers.
  void finish_boundary(ThreadedIntervalReport& report);
  [[nodiscard]] bool async_merge_on() const {
    return sketch_sink_ != nullptr && config_.async_merge;
  }

  ThreadedConfig config_;
  std::shared_ptr<OperatorLogic> logic_;
  std::unique_ptr<Controller> controller_;
  std::optional<ConsistentHashRing> hash_ring_;  // hash-only mode
  InstanceId num_workers_;

  std::vector<std::unique_ptr<BoundedMpmcQueue<WorkerMsg>>> queues_;
  std::vector<std::unique_ptr<StateStore>> stores_;
  std::vector<std::unique_ptr<WorkerStats>> stats_;
  /// Messages the driver has pushed to each worker (driver-owned; the
  /// quiescence wait compares it against WorkerStats::done_msgs).
  /// StopMsg is deliberately uncounted — nothing waits after shutdown.
  std::vector<std::uint64_t> pushed_msgs_;
  /// Driver-side scratch maps swapped against WorkerStats::per_key at
  /// each drain (cleared with buckets retained — no per-interval rebuild).
  std::vector<std::unordered_map<KeyId, PerKeyStat>> drain_scratch_;
  std::unique_ptr<StatsProvider> monitor_;  // hash-only mode, else null
  /// The provider as a slab sink when stats_mode == kSketch (whether
  /// owned by the controller or by monitor_; the single window or the
  /// sharded controller — the engine cannot tell, which is the point);
  /// null in exact mode. Non-null switches the worker↔driver statistics
  /// contract to thread-local slabs + boundary merge.
  SketchSlabSink* sketch_sink_ = nullptr;
  /// One slab pair per worker (sketch mode only, else empty). Inline
  /// merge uses buffer 0 only.
  std::vector<std::unique_ptr<SlabPair>> slabs_;
  BoundedMpmcQueue<ExtractedState> migration_mailbox_;
  std::vector<std::thread> workers_;
  std::vector<std::vector<Tuple>> pending_batches_;
  /// route_chunk scratch (driver-only; retained across chunks).
  std::vector<KeyId> route_keys_;
  std::vector<InstanceId> route_dests_;
  /// CPU the driver ran start_workers() on (-1 if unknown); the merge
  /// thread prefers allocations from this CPU's NUMA node.
  int driver_cpu_ = -1;

  // --- Seal/merge protocol state (sketch mode + async_merge only) ---
  /// The post-roll heavy set of epoch heavy_epoch_. Written by whoever
  /// completes the roll (merge thread in hash-only mode, driver in
  /// controller mode) BEFORE the release-store of heavy_epoch_; workers
  /// read it after their acquire-load, so the handoff is race-free.
  /// Both barrier waits below use condition variables, NOT yield spins:
  /// on a loaded (or single-core) machine a spinning waiter keeps
  /// burning scheduler slices the merge path needs, which is exactly the
  /// overlap this protocol exists to create.
  std::vector<KeyId> heavy_published_;
  std::atomic<std::uint64_t> heavy_epoch_{0};
  std::mutex heavy_mu_;
  std::condition_variable heavy_cv_;
  /// Signalled by workers after each seal publication; the merge thread
  /// sleeps here until the next sealed slab is available.
  std::mutex seal_mu_;
  std::condition_variable seal_cv_;
  /// Set once at shutdown; breaks workers out of the heavy-set barrier
  /// and the merge thread out of its seal waits.
  std::atomic<bool> stopping_{false};
  std::thread merge_thread_;
  std::mutex merge_mu_;
  std::condition_variable merge_cv_;
  std::uint64_t merge_requested_ = 0;  // guarded by merge_mu_
  std::uint64_t merge_completed_ = 0;  // guarded by merge_mu_
  bool merge_stop_ = false;            // guarded by merge_mu_
  BoundaryResult boundary_result_;     // guarded by merge_mu_
  /// Boundary-in-flight epoch between begin_boundary and
  /// finish_boundary (driver-only).
  std::uint64_t open_boundary_epoch_ = 0;
  /// Driver-side stall accumulator for the open boundary.
  double open_boundary_stall_ms_ = 0.0;

  InstanceId pinned_workers_ = 0;
  std::atomic<std::uint64_t> total_processed_{0};
  std::atomic<std::uint64_t> total_outputs_{0};
  std::uint64_t total_emitted_ = 0;
  IntervalId interval_ = 0;
  Micros engine_epoch_us_ = 0;
  bool stopped_ = false;
};

}  // namespace skewless
